// The divide-and-conquer spot noise engine — the paper's contribution.
//
// The spot collection is partitioned into disjoint sets, one per process
// group. A process group drives exactly one graphics pipe (paper §4):
//
//   * the group's master owns the pipe's context: it is the only thread
//     that submits commands, and it performs spot-shape calculation itself
//     whenever it would otherwise idle;
//   * producers claim chunks of a group's spot set, transform them into
//     command buffers and hand the buffers to that group's master;
//   * each pipe renders its group's spots into a partial texture; after all
//     groups complete, partial textures are gathered across the bus and
//     blended sequentially — the overhead term c of eq. 3.2.
//
// With DncConfig::tiled set, groups work on disjoint texture regions
// instead (texture decomposition): spots are assigned to regions by
// location in a preprocessing step, spots near boundaries are duplicated
// into every region they may touch, and the final compose is a cheap copy.
//
// Ownership (changed by the shared-runtime refactor, see core/runtime.hpp):
// a synthesizer no longer owns worker threads, pipes or readback buffers —
// it *borrows* them from a core::Runtime (the process-global one by
// default). Each synthesize() call registers a frame job with the runtime;
// the calling thread always participates, and runtime pool workers join up
// to the session's processor budget. Participants claim the group-master
// roles first and produce spot geometry after. Because pool workers are
// fungible across every registered job, an idle session's capacity flows to
// a loaded one — cross-session work stealing over the same
// util::StealableWorkCounter that balances groups within a frame. The
// PR 4 determinism lattice guarantees this cannot show in the pixels:
// rasterization is target-independent and accumulation is lattice-exact, so
// the texture is bitwise identical no matter which worker (of which
// session) generated or rasterized a chunk.
//
// Frame termination is item-counted, not barrier-counted: every chunk a
// producer claims from group g's counter is registered in-flight against g
// before the claim and retired when g's master submits it, so a master
// exits exactly when its counter is drained and its in-flight count is
// zero — independent of how many participants exist or when they come and
// go. (The old design needed one dedicated thread per processor and two
// barriers per frame; a shared pool cannot promise either.)
//
// Process groups persist across frames; synthesize() is called once per
// animation frame with that frame's field and spot set, which is what makes
// the algorithm usable for the paper's interactive steering, browsing and
// multi-session service applications.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <vector>

#include "core/frame_delta.hpp"
#include "core/runtime.hpp"
#include "core/spot_geometry.hpp"
#include "core/spot_params.hpp"
#include "core/tiling.hpp"
#include "render/bus.hpp"
#include "render/compose.hpp"
#include "render/pipe.hpp"
#include "util/error.hpp"
#include "util/queue.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"
#include "util/threading.hpp"

namespace dcsn::core {

/// Thrown out of synthesize() when the frame was abandoned because the
/// job's cancellation token fired (see bind_frame_control and
/// core::SynthesisService). The engine stays usable afterwards, exactly as
/// with any other frame failure.
class JobCanceled : public util::Error {
 public:
  JobCanceled() : util::Error("synthesis job canceled") {}
};

/// Thrown out of synthesize() when the frame exceeded its deadline budget:
/// either the accumulated injected-delay penalty crossed
/// FrameControl::deadline_penalty_ns (virtual time, deterministic) or an
/// external watchdog flagged FrameControl::timed_out (wall time). Checked at
/// the same chunk-granularity points as cancellation, so a timed-out frame
/// abandons within one chunk and the engine rearms for the next job.
/// Deliberately NOT a TransientError: retrying a frame that blew its
/// deadline wastes the next deadline too — the service degrades or fails it.
class JobTimedOut : public util::Error {
 public:
  JobTimedOut() : util::Error("synthesis job exceeded its deadline") {}
};

/// Thrown out of synthesize() when the frame was abandoned because the
/// scheduler asked it to yield its driver (FrameControl::yield): a
/// higher-urgency job's deadline is at risk and every driver is busy. Like
/// a cancel this rides the failure protocol — the engine rearms for the
/// next job — but the *service* treats it differently: the job goes back to
/// the front of its session queue with its attempt counter rolled back, so
/// the re-dispatch redraws the identical fault schedule and consumes no
/// retry budget. Client futures never observe this exception.
class JobYielded : public util::Error {
 public:
  JobYielded() : util::Error("synthesis job yielded to a more urgent job") {}
};

/// Per-job control block bound to the engine for the duration of one
/// synthesize() call (SynthesisService binds one per dispatch attempt).
/// The service and watchdog write the flags; the engine polls them at chunk
/// granularity and charges injected delays / chunk progress back.
struct FrameControl {
  /// Caller-requested cancel: the frame aborts with JobCanceled.
  std::atomic<bool> cancel{false};
  /// External deadline/watchdog verdict: the frame aborts with JobTimedOut.
  std::atomic<bool> timed_out{false};
  /// Scheduler preemption request: the frame aborts with JobYielded at the
  /// next chunk checkpoint, freeing its driver for a deadline-at-risk job.
  std::atomic<bool> yield{false};
  /// Virtual nanoseconds of injected delay charged to this frame by the
  /// FaultInjector. Pure function of (fault seed, fault_key, workload) over
  /// a completed attempt — the deterministic half of deadline enforcement.
  std::atomic<std::int64_t> delay_penalty_ns{0};
  /// Chunks generated or submitted so far: the heartbeat a no-progress
  /// watchdog compares between polls.
  std::atomic<std::int64_t> progress{0};
  /// Abort with JobTimedOut once delay_penalty_ns exceeds this budget.
  std::int64_t deadline_penalty_ns = std::numeric_limits<std::int64_t>::max();
  /// Stable per-attempt identity mixed into every outcome-site fault key,
  /// so a retry of the same job draws a fresh (but still deterministic)
  /// fault schedule.
  std::uint64_t fault_key = 0;
};

/// How tiled mode carves the texture into per-pipe regions.
enum class TileStrategy {
  kGrid,          ///< fixed near-square grid, independent of the spots
  kCostBalanced,  ///< per-frame kd-cut balancing per-region spot work
};

struct DncConfig {
  /// Worker budget for one frame: at most this many participants (the
  /// calling thread plus runtime pool workers) serve the frame — the nP of
  /// eq. 3.2. The session's runtime grows its shared pool to at least this
  /// size.
  int processors = 4;
  int pipes = 1;  ///< graphics pipes / process groups, the nG of eq. 3.2
  /// Spots per command buffer: the streaming granularity from processors to
  /// pipes. Small enough to overlap generation with rendering, large enough
  /// to amortize queue traffic.
  std::int64_t chunk_spots = 32;
  /// Shared host<->graphics bus bandwidth; 0 disables the bus model. The
  /// paper's Onyx2 bus moves 800 MB/s.
  double bus_bytes_per_second = 0.0;
  /// Pipe state-change sync latency (see render::PipeConfig).
  double state_change_seconds = 20e-6;
  /// >1 slows rasterization to model a weaker pipe (ablations only).
  double raster_cost_multiplier = 1.0;
  /// Triangle fill algorithm the pipes rasterize with. kSpan is the fast
  /// span-based scanline kernel; kReference is the bbox-walk oracle
  /// (equivalence tests, bench_raster_kernel ablation).
  render::RasterAlgorithm raster_algorithm = render::RasterAlgorithm::kSpan;
  std::size_t pipe_queue_capacity = 64;
  /// Texture decomposition instead of full-texture gather-blend.
  bool tiled = false;
  /// Region layout in tiled mode (ignored otherwise).
  TileStrategy tile_strategy = TileStrategy::kGrid;
  /// Cross-group work stealing: idle participants pull chunk ranges from
  /// the most loaded group once their own group's counter drains. Off
  /// reproduces the static partition (the bench_ablation_balance baseline);
  /// off also pins each producer to its affinity group.
  bool steal = true;
  /// Tiled mode only: memoize rendered tiles in the runtime's process-wide
  /// core::TileStore, keyed by content (spot subset, field fingerprint,
  /// raster config, tile rect). A dirty tile probes the store before
  /// regenerating; freshly rendered and retained-clean tiles are published
  /// back. Because the store is shared across every session of the runtime,
  /// N sessions browsing the same dataset rasterize each tile once —
  /// bit-identically to the uncached path (the PR 4 lattice guarantees a
  /// tile's pixels are a pure function of the key).
  bool tile_cache = false;
};

/// Everything measured about one synthesized frame. The benches derive the
/// paper's numbers from these.
struct FrameStats {
  double frame_seconds = 0.0;    ///< wall clock for the whole frame
  double genP_seconds = 0.0;     ///< CPU spot-shape time, summed over workers
  double genT_seconds = 0.0;     ///< pipe busy time, summed over pipes
  double gather_seconds = 0.0;   ///< sequential readback + blend (term c)
  double assign_seconds = 0.0;   ///< tiling preprocessing (tiled mode only)
  std::int64_t spots = 0;            ///< input spot count
  std::int64_t spots_submitted = 0;  ///< includes tiling duplicates
  std::int64_t duplicated_spots = 0;
  std::int64_t vertices = 0;
  std::uint64_t geometry_bytes = 0;  ///< vertex traffic to the pipes
  std::uint64_t readback_bytes = 0;  ///< texture traffic back to the host
  double pipe_stall_seconds = 0.0;   ///< pipes waiting on the bus
  double pipe_state_seconds = 0.0;   ///< pipes executing state changes
  render::RasterStats raster;

  // Temporal-coherence accounting (incremental frames only; see
  // core::SynthesisCache). A reused tile skipped its clear, generation,
  // rasterization and readback entirely; its region of the final texture
  // retains the previous frame's bit-exact pixels.
  std::int64_t tiles_reused = 0;   ///< clean tiles served from retention
  std::int64_t spots_skipped = 0;  ///< assignments not generated/rendered

  // Content-addressed tile cache accounting (DncConfig::tile_cache engines;
  // see core::TileStore). A cache hit skips clear, generation,
  // rasterization and readback like a retained tile, but the pixels come
  // from the shared store — possibly rendered by another session.
  std::int64_t cache_tile_hits = 0;    ///< dirty tiles served from the store
  std::int64_t cache_tile_misses = 0;  ///< probed tiles that had to render
  std::int64_t cache_tiles_published = 0;  ///< tiles this frame inserted
  std::int64_t cache_evictions = 0;  ///< entries this frame's publishes evicted
  std::int64_t cache_spots_skipped = 0;  ///< assignments served by hits
  std::uint64_t cache_hit_bytes = 0;  ///< pixel bytes composed from the store

  /// The frame was served degraded: the service answered with retained
  /// stale pixels instead of synthesizing, because the deadline could not
  /// be met (see SubmitOptions::DeadlinePolicy::kDegrade). The engine never
  /// sets this — a synthesized frame is never degraded; the texture is the
  /// previous completed frame's, bit-exact.
  bool degraded = false;

  /// Largest |pixel| of the frame — the canary for the contribution
  /// lattice's exact-summation budget (util::simd::kContributionExactBound,
  /// 128): bit-determinism and incremental retention rest on per-pixel
  /// partial sums staying inside that range, and this is the cheap
  /// necessary-condition monitor. Workloads that push it toward the bound
  /// (it sits around 1 for natural-intensity populations) are leaving the
  /// design envelope; the determinism suite and bench_incremental assert
  /// generous headroom.
  double peak_pixel_magnitude = 0.0;

  // Load-balance accounting.
  std::int64_t stolen_chunks = 0;  ///< chunk ranges taken across groups
  std::int64_t stolen_spots = 0;   ///< spots inside those ranges
  double steal_seconds = 0.0;      ///< CPU time generating stolen chunks (subset of genP)
  /// Static-partition imbalance: max over groups of assigned spots divided
  /// by the per-group mean (1.0 = perfectly even). Measured before stealing.
  double imbalance = 1.0;

  // Multi-session runtime accounting.
  /// Seconds the job waited in a SynthesisService queue before a driver
  /// picked it up (0 for frames synthesized directly). Not part of
  /// modeled_frame_seconds: queue wait is contention, not work.
  double queue_wait_seconds = 0.0;
  /// Chunks of this frame generated by runtime pool workers while at least
  /// one other session's frame was registered with the runtime — shared
  /// capacity applied under cross-session contention. Zero whenever a
  /// session runs alone.
  std::int64_t cross_session_chunks = 0;
  std::int64_t cross_session_spots = 0;  ///< spots inside those chunks

  // Eq. 3.2 critical path, from per-thread CPU clocks. genP/genT attribution
  // uses CPU time (ThreadCpuStopwatch), so these stay meaningful when the
  // host has fewer cores than workers + pipes — wall-clock frame_seconds on
  // such a host serializes everything and cannot show a balancing win.
  double genP_critical_seconds = 0.0;  ///< max over workers of generation CPU
  double genT_critical_seconds = 0.0;  ///< max over pipes of busy CPU
  /// assign + max(genP critical, genT critical) + gather: the frame time a
  /// host with one core per worker and pipe would see (generation overlaps
  /// rendering, pipes run concurrently, pre/post processing is sequential).
  double modeled_frame_seconds = 0.0;

  /// Textures per second as the paper's tables report it.
  [[nodiscard]] double textures_per_second() const {
    return frame_seconds > 0.0 ? 1.0 / frame_seconds : 0.0;
  }

  /// Textures per second on the modeled fully-parallel host.
  [[nodiscard]] double modeled_textures_per_second() const {
    return modeled_frame_seconds > 0.0 ? 1.0 / modeled_frame_seconds : 0.0;
  }
};

class DncSynthesizer {
 public:
  /// Borrows workers, pipes and buffers from the process-global Runtime.
  DncSynthesizer(SynthesisConfig synthesis, DncConfig dnc);
  /// Borrows from an explicit Runtime (which must outlive the synthesizer).
  DncSynthesizer(SynthesisConfig synthesis, DncConfig dnc, Runtime& runtime);
  ~DncSynthesizer();

  DncSynthesizer(const DncSynthesizer&) = delete;
  DncSynthesizer& operator=(const DncSynthesizer&) = delete;

  /// Synthesizes one texture. `f` and `spots` must stay valid for the call.
  /// If a participant throws (e.g. a DCSN_CHECK inside spot generation),
  /// the frame is abandoned and the first exception is rethrown here; the
  /// engine stays usable for subsequent frames. Not re-entrant: one frame
  /// per session at a time (SynthesisService serializes per session).
  ///
  /// `plan` (tiled mode only, normally produced by core::SynthesisCache)
  /// enables temporal reuse: tiles whose flag is clear are not cleared,
  /// generated, rasterized or read back — their region of the final
  /// texture retains the previous frame's pixels, which is bit-identical
  /// to re-rendering them because their spot set did not change. On a
  /// planned frame the tile grid is kept frozen (no kCostBalanced reshape):
  /// the plan was derived against the current grid.
  FrameStats synthesize(const field::VectorField& f,
                        std::span<const SpotInstance> spots,
                        const FramePlan* plan = nullptr);

  [[nodiscard]] const render::Framebuffer& texture() const { return final_; }
  [[nodiscard]] const SynthesisConfig& config() const { return synthesis_; }
  [[nodiscard]] const DncConfig& dnc_config() const { return dnc_; }
  [[nodiscard]] const std::vector<Tile>& tiles() const { return tiles_; }
  [[nodiscard]] render::PipeStats pipe_stats(int pipe) const;
  [[nodiscard]] Runtime& runtime() const { return *runtime_; }

  /// Bumped at the start of every synthesize() call (failed frames
  /// included). SynthesisCache uses it to detect frames it did not commit.
  [[nodiscard]] std::int64_t frame_serial() const { return frame_serial_; }

  /// Binds a per-job control block checked at chunk granularity during the
  /// frame: a cancel flag aborts with JobCanceled, a timed_out flag or an
  /// exhausted delay-penalty budget aborts with JobTimedOut — both through
  /// the failure protocol, leaving the engine armed for the next job. The
  /// block also carries the job's fault key and receives injected-delay
  /// penalties and chunk progress. Pass nullptr to unbind. Call between
  /// frames only (the service binds one per dispatch attempt).
  void bind_frame_control(FrameControl* control) { control_ = control; }

 private:
  struct Message {
    render::CommandBuffer buffer;
    std::int64_t items = 0;  ///< spots covered by `buffer`
    /// Pre-drawn kPipeSubmit decisions for every spot `buffer` carries,
    /// drawn at generation time (where the owning group's global-index
    /// mapping is in scope) and applied by whichever master submits the
    /// buffer — so the fault outcome is keyed by *which spots* are
    /// submitted, never by who submits them, when, or where the
    /// work-stealing crossover happened to split the range.
    FaultInjector::Batch submit_faults;
  };

  struct Group {
    PipeLease pipe;
    util::BoundedQueue<Message> inbox{256};
    std::unique_ptr<util::StealableWorkCounter> work;  ///< over the group's local indices
    const std::vector<std::int64_t>* tile_indices = nullptr;  ///< tiled mode
    std::int64_t begin = 0;  ///< contiguous mode: global range [begin, end)
    std::int64_t end = 0;
    std::int64_t total_items = 0;  ///< spots assigned to this group this frame
    /// Cleared for a clean tile of an incremental frame: the group renders
    /// nothing (participants still steal for dirty groups) and the gather
    /// retains its texture region.
    bool active = true;
    /// This frame's tile was served from the shared TileStore: like a clean
    /// tile the group renders nothing, but the gather composes the pinned
    /// cache pixels instead of retaining final_'s region.
    bool cache_hit = false;
    /// The master role for this group has started; only then may producers
    /// claim from its counter (a blocked inbox push needs a live consumer).
    std::atomic<bool> master_running{false};
    /// The master role finished its frame. Second half of the two-phase
    /// exit handshake: a producer that wants to route a *foreign* group's
    /// chunk to this pipe registers in `inflight` first and checks this
    /// flag after; the exiting master stores the flag first and rechecks
    /// `inflight` after — so either the master sees the registration and
    /// stays, or the producer sees the flag and reroutes. Without it a
    /// cross-counter delivery could race into an inbox nobody will ever
    /// drain and its spots would silently vanish from the frame.
    std::atomic<bool> master_exited{false};
    /// Messages destined for this group's pipe, registered and not yet
    /// submitted by this group's master — the item-counted half of the
    /// master's exit condition. Incremented *before* the claim attempt
    /// (conservative phantom counts are resolved by the master's timed
    /// inbox wait), decremented on an empty claim or at master submit.
    std::atomic<std::int64_t> inflight{0};
  };

  /// Per-participant accounting and identity for one frame. Slots are a
  /// fixed pool of `processors` entries: a participant occupies the lowest
  /// free slot and its index is its producer affinity (index mod pipes) —
  /// stable across leave/rejoin churn, which matters twice over: with
  /// steal=false a worker that drains its group and rejoins lands back on
  /// the *same* starved partition (the static-baseline semantics the
  /// balance ablation measures), and per-slot stats keep genP attribution
  /// per virtual processor, not per join.
  struct Slot {
    double genP_seconds = 0.0;
    double steal_seconds = 0.0;
    std::int64_t stolen_chunks = 0;
    std::int64_t stolen_spots = 0;
    std::int64_t cross_session_chunks = 0;
    std::int64_t cross_session_spots = 0;
  };

  struct FrameHandle;  // Runtime::SharedJob adapter (defined in the .cpp)

  /// One participant serving the current frame: joins (subject to the
  /// processor budget; the caller always fits), claims master roles and
  /// produces until no work remains. The caller additionally waits for
  /// frame completion before leaving. Returns whether any work was done.
  bool serve_frame(bool is_caller);
  bool participant_loop(Slot& slot, int ordinal, bool is_caller);
  void run_master(Group& group, Slot& slot, bool is_caller);
  /// One unit of producer work: claim from the affinity group, else steal
  /// from the most loaded running group. Returns false when nothing is
  /// claimable right now.
  bool producer_once(Slot& slot, int ordinal, bool is_caller);
  /// One steal attempt on behalf of a master; returns true if the scan
  /// should restart (work was done or raced away).
  bool master_steal_once(Group& me, Slot& slot, bool is_caller);
  /// Generates one chunk of spot geometry. Per spot it checks the
  /// kFieldSample fault site and pre-draws the spot's kPipeSubmit decision
  /// into `submit_faults` (applied later by submit_to_pipe): per-*spot*
  /// keys, not per-chunk, because chunk boundaries are not replay-stable —
  /// StealableWorkCounter claims from the front and steals from the back,
  /// so where the crossover chunk splits depends on the interleaving, and a
  /// `range.begin` key would draw a different fault set every run.
  render::CommandBuffer generate_chunk(const Group& group,
                                       util::StealableWorkCounter::Range range,
                                       Slot& slot, bool is_caller,
                                       FaultInjector::Batch* submit_faults);
  /// Largest-remaining victim, excluding `self`. Producers only see groups
  /// whose master runs (their delivery blocks on the inbox); masters may
  /// additionally raid not-yet-started groups (see the implementation for
  /// the non-blocking delivery guarantees).
  [[nodiscard]] Group* pick_victim(const Group* self, bool for_master);
  /// Records the first failure, closes every inbox so no participant stays
  /// blocked, and marks the frame failed.
  void fail_frame(std::exception_ptr error);
  void check_canceled() const {
    if (control_ == nullptr) return;
    if (control_->cancel.load(std::memory_order_relaxed)) throw JobCanceled();
    if (control_->timed_out.load(std::memory_order_relaxed) ||
        control_->delay_penalty_ns.load(std::memory_order_relaxed) >
            control_->deadline_penalty_ns) {
      throw JobTimedOut();
    }
    if (control_->yield.load(std::memory_order_relaxed)) throw JobYielded();
  }
  /// Decorrelates the job's per-attempt fault key from the low-entropy
  /// spot/tile subkeys before they are XORed together. Raw attempt keys are
  /// often small consecutive integers, and `attempt ^ spot` collides across
  /// attempts (1^0 == 0^1 == 1): retry N+1 would redraw almost exactly the
  /// set of decisions that just failed retry N, so a doomed attempt stays
  /// doomed forever. The splitmix64 finalizer pushes attempt identity into
  /// the high bits first; mix(0) == 0, so an unbound control degenerates to
  /// the bare subkey.
  [[nodiscard]] static std::uint64_t mix_fault_key(std::uint64_t x) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
  /// Outcome-site fault check: keys the bound job's fault_key with a stable
  /// per-spot/per-tile subkey and charges delay penalties to the job. A
  /// no-op (one pointer test) when the runtime has no injector.
  void fault_point(FaultSite site, std::uint64_t subkey) const {
    if (faults_ == nullptr) return;
    faults_->check(
        site,
        mix_fault_key(control_ != nullptr ? control_->fault_key : 0) ^ subkey,
        control_ != nullptr ? &control_->delay_penalty_ns : nullptr);
  }
  /// Contained variant for sites where an injected throw degrades the
  /// operation instead of failing the frame (a faulted probe is a miss, a
  /// faulted publish is skipped): returns false on a throw-hit.
  [[nodiscard]] bool fault_point_contained(FaultSite site,
                                           std::uint64_t subkey) const {
    try {
      fault_point(site, subkey);
      return true;
    } catch (const FaultInjected&) {
      return false;
    }
  }
  /// Pre-draws one outcome-site decision for a stable subkey into `batch`
  /// (pure; counters and effects deferred to the apply at the effect site).
  /// A no-op when the runtime has no injector.
  void fault_predraw(FaultSite site, std::uint64_t subkey,
                     FaultInjector::Batch* batch) const {
    if (faults_ == nullptr) return;
    faults_->predraw(
        site,
        mix_fault_key(control_ != nullptr ? control_->fault_key : 0) ^ subkey,
        batch);
  }
  /// All pipe submissions funnel here: applies the buffer's pre-drawn
  /// per-spot kPipeSubmit batch, then submits and beats the chunk-progress
  /// heartbeat.
  void submit_to_pipe(Group& group, render::CommandBuffer&& buffer,
                      const FaultInjector::Batch& submit_faults) const;
  /// Relative per-spot cost weights for the kd-cut; empty means uniform.
  [[nodiscard]] std::vector<double> estimate_spot_costs(
      std::span<const SpotInstance> spots) const;
  void prepare_tiles(std::span<const SpotInstance> spots);
  [[nodiscard]] std::int64_t global_index(const Group& group, std::int64_t local) const;

  SynthesisConfig synthesis_;  // lock-lint: unguarded(immutable after construction)
  DncConfig dnc_;              // lock-lint: unguarded(immutable after construction)
  Runtime* runtime_;           // lock-lint: unguarded(immutable after construction)
  /// Hash of every pixel-affecting synthesis/raster parameter — the
  /// config component of this engine's TileStore keys (computed once;
  /// excludes inputs like the spot seed that enter through the spot list).
  std::uint64_t tile_key_config_hash_ = 0;  // lock-lint: unguarded(immutable after construction)

  std::shared_ptr<render::Bus> bus_;  // lock-lint: unguarded(immutable after construction)
  /// One per group in tiled mode.
  std::vector<Tile> tiles_;   // lock-lint: unguarded(caller thread, between frames)
  // Group is immovable (owns a queue).
  std::vector<std::unique_ptr<Group>> groups_;  // lock-lint: unguarded(sized at construction)
  render::Framebuffer final_;       // lock-lint: unguarded(caller thread, between frames)
  std::int64_t frame_serial_ = 0;   // lock-lint: unguarded(caller thread, between frames)
  FrameControl* control_ = nullptr;  // lock-lint: unguarded(caller thread, between frames; pointee internally synchronized)
  /// Cached runtime_->faults(); null disables every injection site.
  FaultInjector* faults_ = nullptr;  // lock-lint: unguarded(immutable after construction)

  // Per-frame job state, written by synthesize() before the job opens and
  // read-only while participants run — publication happens-before via the
  // frame_open_ transition under job_mutex_.
  const field::VectorField* job_field_ = nullptr;  // lock-lint: unguarded(frame-setup, see above)
  std::span<const SpotInstance> job_spots_;        // lock-lint: unguarded(frame-setup, see above)
  std::unique_ptr<SpotGeometryGenerator> job_generator_;  // lock-lint: unguarded(frame-setup, see above)
  TileAssignment job_assignment_;                  // lock-lint: unguarded(frame-setup, see above)

  // Participation state for the frame in flight.
  std::shared_ptr<FrameHandle> frame_handle_;  // lock-lint: unguarded(caller thread, between frames)
  std::atomic<int> next_master_{0};   ///< master roles handed out
  std::atomic<int> masters_done_{0};  ///< master roles completed (or bailed)
  /// Guards the participation fields below + slots_ growth.
  util::Mutex job_mutex_;
  util::CondVar job_cv_;  ///< master/participant transitions
  /// Accepting participants.
  bool frame_open_ DCSN_GUARDED_BY(job_mutex_) = false;
  /// Includes the caller's reserved seat.
  int active_participants_ DCSN_GUARDED_BY(job_mutex_) = 0;
  // Start gate: early participants line up until `gate_expected_` have
  // joined or the deadline passes (see synthesize for why).
  bool gate_open_ DCSN_GUARDED_BY(job_mutex_) = true;
  int gate_expected_ DCSN_GUARDED_BY(job_mutex_) = 1;
  // determinism: the gate deadline bounds how long participants line up —
  // scheduling only, never pixels (the lattice makes join order invisible).
  std::chrono::steady_clock::time_point gate_deadline_ DCSN_GUARDED_BY(job_mutex_){};
  /// Fixed: one per processor. Grown under job_mutex_; each occupied slot is
  /// then written by its one participant only.
  std::vector<Slot> slots_ DCSN_GUARDED_BY(job_mutex_);
  /// Slot 0 is the caller's.
  std::vector<std::uint8_t> slot_taken_ DCSN_GUARDED_BY(job_mutex_);

  // Frame failure protocol: the first participant to throw stores its
  // exception, flips the flag, and closes every inbox; everyone else drains
  // out and synthesize() rethrows on the caller thread.
  std::atomic<bool> frame_failed_{false};
  util::Mutex error_mutex_;
  std::exception_ptr frame_error_ DCSN_GUARDED_BY(error_mutex_);
};

}  // namespace dcsn::core
