// Synthesis parameters: everything that defines what one spot-noise texture
// looks like, independent of *how* (serial or divide-and-conquer) it is
// generated.
#pragma once

#include <cstdint>
#include <optional>

#include "field/vec2.hpp"
#include "render/spot_profile.hpp"

namespace dcsn::core {

/// How a spot's geometry responds to the vector field.
enum class SpotKind {
  kPoint,    ///< untransformed circular spot — plain noise (fig. 1)
  kEllipse,  ///< stretched along the local velocity (van Wijk '91)
  kBent,     ///< streamline-swept mesh (de Leeuw & van Wijk '95), used by
             ///< both applications in the paper
};

/// Ellipse spots: scale along the flow grows with relative velocity up to
/// `max_stretch`; area is preserved so texture energy stays even.
struct EllipseSpotParams {
  double max_stretch = 3.0;
};

/// Bent spots: a mesh_cols x mesh_rows vertex mesh tiling the surface swept
/// by a streamline through the spot position (paper §2). The atmospheric
/// application used 32x17 meshes, the DNS application 16x3.
struct BentSpotParams {
  int mesh_cols = 16;        ///< vertices along the streamline
  int mesh_rows = 3;         ///< vertices across the ribbon
  double length_px = 48.0;   ///< total arc length in texture pixels
  /// Integration substeps per mesh segment. Higher values integrate the
  /// streamline more accurately through strongly curved flow, at
  /// proportionally more CPU cost per spot; this is the genP side of the
  /// CPU/pipe balance (see DESIGN.md calibration notes).
  int trace_substeps = 4;
};

struct SynthesisConfig {
  int texture_width = 512;   ///< "final texture size is usually 512x512"
  int texture_height = 512;
  std::int64_t spot_count = 2000;
  double spot_radius_px = 8.0;
  SpotKind kind = SpotKind::kEllipse;
  EllipseSpotParams ellipse;
  BentSpotParams bent;
  render::SpotShape profile_shape = render::SpotShape::kCosine;
  int profile_resolution = 64;
  /// Scales every spot intensity; the natural value keeps texture contrast
  /// independent of spot count (see SerialSynthesizer::natural_intensity).
  double intensity_scale = 1.0;
  /// World rectangle the texture covers. Unset = the field's full domain.
  /// Setting a smaller window re-synthesizes that region at full texture
  /// resolution — true magnification for the data browser, as opposed to
  /// render::render_scene which only resamples an existing texture.
  std::optional<field::Rect> window;
  std::uint64_t seed = 42;

  [[nodiscard]] int vertices_per_spot() const {
    return kind == SpotKind::kBent ? bent.mesh_cols * bent.mesh_rows : 4;
  }
};

}  // namespace dcsn::core
