#include "core/fault_injector.hpp"

namespace dcsn::core {

namespace {

/// splitmix64: the standard strong 64-bit finalizer. Deterministic, seeded,
/// no global state — the entire "randomness" of a fault schedule.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Burns CPU without reading any clock: iteration count is the unit.
void spin(std::int64_t iterations) {
  volatile std::uint64_t sink = 0;
  for (std::int64_t i = 0; i < iterations; ++i) {
    sink = sink + static_cast<std::uint64_t>(i);
  }
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kWorkerPickup: return "worker-pickup";
    case FaultSite::kQueuePop: return "queue-pop";
    case FaultSite::kPipeSubmit: return "pipe-submit";
    case FaultSite::kFieldSample: return "field-sample";
    case FaultSite::kStoreProbe: return "store-probe";
    case FaultSite::kStorePublish: return "store-publish";
    case FaultSite::kFramebufferCheckout: return "framebuffer-checkout";
  }
  return "unknown";
}

FaultInjector::Action FaultInjector::decide(FaultSite site,
                                            std::uint64_t key) const {
  const FaultRule& rule = plan_.rule(site);
  if (rule.throw_rate <= 0.0 && rule.delay_rate <= 0.0 && rule.drop_rate <= 0.0) {
    return Action::kNone;
  }
  // One uniform draw per visit, from a per-site stream of the seed.
  const std::uint64_t h = splitmix64(
      plan_.seed ^ splitmix64(static_cast<std::uint64_t>(site) + 1) ^ key);
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  if (u < rule.throw_rate) return Action::kThrow;
  if (u < rule.throw_rate + rule.delay_rate) return Action::kDelay;
  if (u < rule.throw_rate + rule.delay_rate + rule.drop_rate) return Action::kDrop;
  return Action::kNone;
}

void FaultInjector::account(FaultSite site, Action action) {
  SiteCounters& c = counters_[static_cast<std::size_t>(site)];
  c.evaluations.fetch_add(1, std::memory_order_relaxed);
  switch (action) {
    case Action::kThrow: c.throws.fetch_add(1, std::memory_order_relaxed); break;
    case Action::kDelay: c.delays.fetch_add(1, std::memory_order_relaxed); break;
    case Action::kDrop: c.drops.fetch_add(1, std::memory_order_relaxed); break;
    case Action::kNone: break;
  }
}

FaultInjector::Action FaultInjector::check(FaultSite site, std::uint64_t key,
                                           std::atomic<std::int64_t>* penalty_ns) {
  const Action action = decide(site, key);
  account(site, action);
  if (action == Action::kThrow) throw FaultInjected(site);
  if (action == Action::kDelay) {
    const FaultRule& rule = plan_.rule(site);
    if (penalty_ns != nullptr && rule.delay_seconds > 0.0) {
      penalty_ns->fetch_add(static_cast<std::int64_t>(rule.delay_seconds * 1e9),
                            std::memory_order_relaxed);
    }
    spin(rule.delay_spin_iterations);
  }
  return action;
}

void FaultInjector::predraw(FaultSite site, std::uint64_t key,
                            Batch* batch) const {
  ++batch->evaluations;
  switch (decide(site, key)) {
    case Action::kThrow: ++batch->throws; break;
    case Action::kDelay: ++batch->delays; break;
    case Action::kDrop: ++batch->drops; break;
    case Action::kNone: break;
  }
}

void FaultInjector::apply(FaultSite site, const Batch& batch,
                          std::atomic<std::int64_t>* penalty_ns) {
  SiteCounters& c = counters_[static_cast<std::size_t>(site)];
  c.evaluations.fetch_add(batch.evaluations, std::memory_order_relaxed);
  c.throws.fetch_add(batch.throws, std::memory_order_relaxed);
  c.delays.fetch_add(batch.delays, std::memory_order_relaxed);
  c.drops.fetch_add(batch.drops, std::memory_order_relaxed);
  const FaultRule& rule = plan_.rule(site);
  if (batch.delays > 0) {
    if (penalty_ns != nullptr && rule.delay_seconds > 0.0) {
      penalty_ns->fetch_add(
          static_cast<std::int64_t>(batch.delays * rule.delay_seconds * 1e9),
          std::memory_order_relaxed);
    }
    spin(batch.delays * rule.delay_spin_iterations);
  }
  if (batch.throws > 0) throw FaultInjected(site);
}

FaultInjector::Action FaultInjector::check_scheduling(FaultSite site) {
  SiteCounters& c = counters_[static_cast<std::size_t>(site)];
  const std::uint64_t key = c.arrivals.fetch_add(1, std::memory_order_relaxed);
  Action action = decide(site, key);
  if (action == Action::kThrow) action = Action::kDrop;  // never kill a worker
  account(site, action);
  if (action == Action::kDelay) spin(plan_.rule(site).delay_spin_iterations);
  return action;
}

FaultInjector::Counters FaultInjector::counters() const {
  Counters out;
  for (int s = 0; s < kFaultSiteCount; ++s) {
    const SiteCounters& c = counters_[static_cast<std::size_t>(s)];
    out.evaluations[static_cast<std::size_t>(s)] =
        c.evaluations.load(std::memory_order_relaxed);
    out.throws[static_cast<std::size_t>(s)] = c.throws.load(std::memory_order_relaxed);
    out.delays[static_cast<std::size_t>(s)] = c.delays.load(std::memory_order_relaxed);
    out.drops[static_cast<std::size_t>(s)] = c.drops.load(std::memory_order_relaxed);
  }
  return out;
}

void FaultInjector::reset_counters() {
  for (auto& c : counters_) {
    c.evaluations.store(0, std::memory_order_relaxed);
    c.throws.store(0, std::memory_order_relaxed);
    c.delays.store(0, std::memory_order_relaxed);
    c.drops.store(0, std::memory_order_relaxed);
    // arrivals deliberately kept: resetting it would re-run the same
    // scheduling prefix, which is not "the same run continuing".
  }
}

}  // namespace dcsn::core
