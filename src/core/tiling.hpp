// Texture decomposition (paper §3, "texture decomposition" tradeoff; §4,
// "we have also implemented texture tiling").
//
// Each process group renders only a predefined region of the final texture.
// Spots are assigned to regions by location in a preprocessing step; a spot
// whose extent may touch several regions is assigned to each of them (the
// duplication cost the paper accepts in exchange for a cheap compose: tiles
// are disjoint, so the final texture is assembled by copies, not blends).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/spot_source.hpp"
#include "render/overlay.hpp"

namespace dcsn::core {

struct Tile {
  int x0 = 0;      ///< pixel rect inside the final texture
  int y0 = 0;
  int width = 0;
  int height = 0;

  bool operator==(const Tile&) const = default;
};

/// Splits a width x height texture into `count` tiles arranged in a
/// near-square grid. Every pixel belongs to exactly one tile. Throws
/// util::Error when the grid would need more columns or rows than the
/// texture has pixels (which would produce empty tiles).
[[nodiscard]] std::vector<Tile> make_tile_grid(int width, int height, int count);

/// Splits the texture into `count` tiles of approximately equal *work* via a
/// recursive kd-cut: each cut is placed where the accumulated spot cost
/// balances the tile counts of the two sides. `spot_costs` weighs each spot
/// (e.g. PerfModel's per-spot cost estimate); empty means uniform cost, i.e.
/// balance per-tile spot counts. Every pixel belongs to exactly one tile.
[[nodiscard]] std::vector<Tile> make_balanced_tiles(
    int width, int height, int count, std::span<const SpotInstance> spots,
    const render::WorldToImage& mapping, std::span<const double> spot_costs = {});

struct TileAssignment {
  /// spot indices per tile, in ascending order
  std::vector<std::vector<std::int64_t>> per_tile;
  /// sum of list lengths minus the spot count: the duplicated work
  std::int64_t duplicates = 0;
};

/// Assigns each spot to every tile its extent (a square of half-width
/// `extent_px` around the mapped position) overlaps.
[[nodiscard]] TileAssignment assign_spots_to_tiles(
    std::span<const SpotInstance> spots, const render::WorldToImage& mapping,
    double extent_px, std::span<const Tile> tiles);

}  // namespace dcsn::core
