// Software pipelining across animation frames.
//
// The paper overlaps CPU work with the graphics subsystem *within* a frame
// (eq. 2.1). The same coprocessor view extends across frames: while the
// engine synthesizes frame n from an immutable spot snapshot, the next
// frame's data read and particle advection can already run — they only
// touch the model and the particle system, not the snapshot. This hides
// steps 1-2 of the pipeline behind step 3 and is the natural "future work"
// extension of the paper's design.
//
// The prepare step runs as a task on the engine's shared core::Runtime
// (tasks have priority over frame service there), not on a private
// std::async thread: N pipelined animators add zero threads of their own.
#pragma once

#include <future>

#include "core/animator.hpp"

namespace dcsn::core {

class PipelinedAnimator {
 public:
  /// Same contract as Animator: `read_data` may mutate and must return the
  /// frame's field; the reference must stay valid until the *end of the
  /// next* step() (the pipeline holds one frame in flight).
  PipelinedAnimator(AnimatorConfig config, DncSynthesizer& synthesizer,
                    particles::ParticleSystem& particles, Animator::ReadData read_data);
  ~PipelinedAnimator();

  /// Runs one pipelined iteration: synthesizes from the spots prepared by
  /// the previous step while preparing the next spot snapshot concurrently.
  AnimationFrame step();

  /// Drops the temporal cache (see Animator::invalidate_cache). The
  /// pipeline holds one prepared frame in flight, so the invalidation takes
  /// effect on the next synthesize — which is exactly the first frame that
  /// could observe the mutated field.
  void invalidate_cache() { cache_.invalidate(); }

  [[nodiscard]] std::int64_t frame_number() const { return frame_; }

 private:
  struct Prepared {
    const field::VectorField* field = nullptr;
    std::vector<SpotInstance> spots;
    double prepare_seconds = 0.0;
  };

  Prepared prepare(std::int64_t frame);

  AnimatorConfig config_;
  DncSynthesizer& synthesizer_;
  particles::ParticleSystem& particles_;
  Animator::ReadData read_data_;
  std::int64_t frame_ = 0;
  Prepared current_;
  std::future<Prepared> next_;
  std::optional<render::Framebuffer> filtered_;
  SynthesisCache cache_;  ///< used when config_.incremental
};

}  // namespace dcsn::core
