// The shared engine runtime: one worker pool, one graphics-pipe pool, one
// framebuffer pool for every synthesizer, animator and service session in
// the process.
//
// The paper's machine model assumes a single synthesis job owning the whole
// Onyx2 — processors, pipes and the bus. That assumption breaks the moment
// two animations (or a service full of client sessions) run concurrently:
// each DncSynthesizer used to spawn its own worker threads and GraphicsPipes
// privately, so N sessions meant N oversubscribed thread pools fighting for
// the same cores. The Runtime inverts the ownership: the *engine* owns the
// workers and device pools, and sessions borrow.
//
//   Runtime
//    ├─ worker pool        N pool threads serving registered SharedJobs
//    │                     (frame jobs) in FIFO order + one-shot tasks
//    ├─ GraphicsPipe pool  released pipes keyed by behavioral config; a
//    │                     checkout reshapes via resize_target instead of
//    │                     constructing a new server thread + target
//    └─ FramebufferPool    recycled readback / partial / scratch textures
//
// Scheduling model. A frame job (one DncSynthesizer::synthesize call)
// registers itself, and *participants* join it: always the calling thread,
// plus pool workers up to the session's processor budget. Participants claim
// group-master roles first and produce spot geometry after, stealing across
// groups — and, because pool workers serve whichever registered job has
// work, across *sessions*: util::StealableWorkCounter never cared which
// thread claims a chunk, and the PR 4 determinism lattice guarantees the
// pixels cannot depend on which session's worker rasterized what. The
// calling thread always participates, so every frame makes progress even
// when the pool is empty or absorbed by other sessions.
//
// One-shot tasks (post/async) ride the same pool: the pipelined animator's
// prepare step and the serial synthesizer's partial workers are tasks, not
// private threads.
//
// A process-global Runtime (Runtime::global()) backs every constructor that
// does not name one, which is what keeps the entire pre-runtime API — and
// its test suite — working unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/fault_injector.hpp"
#include "core/tile_store.hpp"
#include "render/framebuffer_pool.hpp"
#include "render/pipe.hpp"
#include "util/thread_annotations.hpp"

namespace dcsn::core {

struct RuntimeConfig {
  /// Initial worker-pool size. The pool also grows on demand: sessions call
  /// ensure_workers() with their processor budget, so the default Runtime
  /// starts empty and sizes itself to the largest request seen.
  int workers = 0;
  /// Released pipes retained per behavioral configuration; extras are torn
  /// down on release.
  std::size_t max_idle_pipes = 16;
  /// Released framebuffers retained by the shared pool.
  std::size_t max_idle_framebuffers = 64;
  /// Byte budget of the shared content-addressed tile cache (see
  /// core::TileStore). Sessions opt in per engine via DncConfig::tile_cache;
  /// the store itself is process-wide so sessions share rendered tiles.
  std::size_t tile_cache_bytes = 256u << 20;
  /// Lock shards of the tile cache.
  std::size_t tile_cache_shards = 8;
  /// Deterministic fault injection (tests/torture only; see
  /// core/fault_injector.hpp). Null — the default — disables every site at
  /// the cost of one pointer check. Shared so torture harnesses can hold the
  /// injector and read its counters after the runtime is gone.
  std::shared_ptr<FaultInjector> fault_injector = nullptr;
};

class Runtime;

/// RAII checkout of a pooled GraphicsPipe: returns the pipe to the Runtime's
/// pool on destruction (with its session state — bus, profile, viewport —
/// reset), instead of joining its server thread.
class PipeLease {
 public:
  PipeLease() = default;
  PipeLease(Runtime* runtime, std::unique_ptr<render::GraphicsPipe> pipe)
      : runtime_(runtime), pipe_(std::move(pipe)) {}
  PipeLease(PipeLease&&) noexcept = default;
  PipeLease& operator=(PipeLease&& other) noexcept;
  PipeLease(const PipeLease&) = delete;
  PipeLease& operator=(const PipeLease&) = delete;
  ~PipeLease();

  [[nodiscard]] render::GraphicsPipe* get() const { return pipe_.get(); }
  render::GraphicsPipe* operator->() const { return pipe_.get(); }
  render::GraphicsPipe& operator*() const { return *pipe_; }
  explicit operator bool() const { return pipe_ != nullptr; }

 private:
  Runtime* runtime_ = nullptr;
  std::unique_ptr<render::GraphicsPipe> pipe_;
};

class Runtime {
 public:
  /// A cooperative multi-worker computation (a synthesis frame). Pool
  /// workers offer capacity by calling serve(); the implementation joins the
  /// job if it wants the help, works until nothing is immediately
  /// available, and returns whether any work was done. serve() must be safe
  /// to call at any time, including after the job's frame completed — a
  /// worker may hold a snapshot of the registry from before deregistration.
  class SharedJob {
   public:
    virtual ~SharedJob() = default;
    virtual bool serve() = 0;
  };

  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// The process-global runtime every session borrows from by default.
  /// Constructed on first use with an empty pool (sessions grow it).
  [[nodiscard]] static Runtime& global();

  // --- worker pool ---

  /// Grows the pool to at least `count` workers (never shrinks). Sessions
  /// call this with their processor budget so the shared pool can serve the
  /// largest session even when it arrives late.
  void ensure_workers(int count);

  [[nodiscard]] int worker_count() const;

  /// Registers a job for pool service. Jobs are served in registration
  /// (FIFO) order: the oldest frame in flight drains first, which is what
  /// bounds per-job latency under cross-session load.
  void register_job(std::shared_ptr<SharedJob> job);
  void deregister_job(const SharedJob* job);

  /// Wakes sleeping workers after new work appeared inside a registered job
  /// (e.g. a group master started and its counter became claimable).
  void notify_workers();

  /// Registered frame jobs right now (a lock-free snapshot). Sessions use
  /// this to classify work as cross-session: a chunk generated by a pool
  /// worker while >= 2 jobs are registered was capacity another session
  /// could have claimed. Read once per generated chunk, so it must not
  /// touch the pool mutex.
  [[nodiscard]] int active_job_count() const {
    return job_count_.load(std::memory_order_relaxed);
  }

  // --- one-shot tasks ---

  /// Enqueues `fn` for execution on a pool worker. Tasks have priority over
  /// job service so short pipeline steps (e.g. the pipelined animator's
  /// prepare) are not starved behind a long frame.
  void post(std::function<void()> fn);

  /// post() wrapped in a future.
  template <class F>
  [[nodiscard]] auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    post([task] { (*task)(); });
    return result;
  }

  // --- device pools ---

  /// Checks out a pipe matching `config`'s behavioral parameters (state
  /// latency, raster cost/algorithm, queue capacity), reshaping a pooled
  /// pipe via resize_target when only the dimensions differ, or constructing
  /// a fresh one. The lease returns the pipe on destruction. `bus` is the
  /// borrowing session's bus model (rebound per checkout).
  [[nodiscard]] PipeLease acquire_pipe(const render::PipeConfig& config,
                                       std::shared_ptr<render::Bus> bus,
                                       int pipe_id);

  [[nodiscard]] render::FramebufferPool& framebuffers() { return framebuffers_; }

  /// The process-wide content-addressed tile cache. Engines with
  /// DncConfig::tile_cache probe it before rendering a dirty tile and
  /// publish freshly rendered tiles back; because every session of this
  /// runtime shares the one store, a tile rendered by any session serves
  /// them all (bit-identically — see core/tile_store.hpp).
  [[nodiscard]] TileStore& tile_store() { return tile_store_; }

  /// The runtime's fault injector, or null when none was configured.
  /// Engines cache this pointer and consult it at their injection sites.
  [[nodiscard]] FaultInjector* faults() const {
    return config_.fault_injector.get();
  }

  /// Pipes constructed because no pooled pipe matched (pool telemetry).
  [[nodiscard]] std::int64_t pipes_created() const;
  /// Checkouts served by reusing a pooled pipe.
  [[nodiscard]] std::int64_t pipes_reused() const;

 private:
  friend class PipeLease;

  // Behavioral pipe identity: everything except the (resizable) dimensions.
  using PipeKey = std::tuple<double, double, std::size_t, int>;
  static PipeKey key_of(const render::PipeConfig& config) {
    return {config.state_change_seconds, config.raster_cost_multiplier,
            config.queue_capacity, static_cast<int>(config.raster_algorithm)};
  }

  void release_pipe(std::unique_ptr<render::GraphicsPipe> pipe);
  void worker_loop(int worker_id);

  RuntimeConfig config_;  // lock-lint: unguarded(immutable after construction)

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::uint64_t epoch_ DCSN_GUARDED_BY(mutex_) = 0;  ///< bumped per wake event
  bool stop_ DCSN_GUARDED_BY(mutex_) = false;
  /// FIFO service order.
  std::vector<std::shared_ptr<SharedJob>> jobs_ DCSN_GUARDED_BY(mutex_);
  std::atomic<int> job_count_{0};  ///< jobs_.size(), readable without mutex_
  std::vector<std::function<void()>> tasks_ DCSN_GUARDED_BY(mutex_);

  mutable util::Mutex pipes_mutex_;
  std::map<PipeKey, std::vector<std::unique_ptr<render::GraphicsPipe>>>
      idle_pipes_ DCSN_GUARDED_BY(pipes_mutex_);
  std::int64_t pipes_created_ DCSN_GUARDED_BY(pipes_mutex_) = 0;
  std::int64_t pipes_reused_ DCSN_GUARDED_BY(pipes_mutex_) = 0;

  render::FramebufferPool framebuffers_;  // lock-lint: unguarded(internally synchronized)
  // Recycles into framebuffers_: declared after it.
  TileStore tile_store_;  // lock-lint: unguarded(internally synchronized)

  /// Grown under mutex_ (ensure_workers) but deliberately unannotated: the
  /// destructor joins the pool via workers_.clear() *without* mutex_ held —
  /// a worker being joined may itself need mutex_ to observe stop_, so
  /// holding it there would deadlock. Safe because by then no other thread
  /// can call ensure_workers (destruction implies exclusive access).
  std::vector<std::jthread> workers_;  // lock-lint: unguarded(joined unlocked in dtor)
};

}  // namespace dcsn::core
