#include "core/tile_store.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace dcsn::core {

namespace {

std::uint64_t default_index_hash(const TileKey& key) {
  // The three content hashes are already well-mixed FNV states; fold them
  // with the rectangle so same-content tiles of different regions spread
  // across shards.
  std::uint64_t h = util::fnv1a(&key.spot_hash, sizeof(key.spot_hash));
  h = util::fnv1a(&key.field_fp, sizeof(key.field_fp), h);
  h = util::fnv1a(&key.config_hash, sizeof(key.config_hash), h);
  h = util::fnv1a(&key.x0, sizeof(key.x0), h);
  h = util::fnv1a(&key.y0, sizeof(key.y0), h);
  h = util::fnv1a(&key.width, sizeof(key.width), h);
  h = util::fnv1a(&key.height, sizeof(key.height), h);
  return h;
}

}  // namespace

std::uint64_t hash_spot_subset(std::span<const SpotInstance> spots,
                               std::span<const std::int64_t> indices) {
  const std::uint64_t count = indices.size();
  std::uint64_t h = util::fnv1a(&count, sizeof(count));
  for (const std::int64_t k : indices) {
    const SpotInstance& spot = spots[static_cast<std::size_t>(k)];
    h = util::fnv1a(&spot.position.x, sizeof(spot.position.x), h);
    h = util::fnv1a(&spot.position.y, sizeof(spot.position.y), h);
    h = util::fnv1a(&spot.intensity, sizeof(spot.intensity), h);
  }
  return h;
}

TileStore::TileStore(Config config) : config_(std::move(config)) {
  DCSN_CHECK(config_.shards >= 1, "tile store needs at least one shard");
  if (!config_.index_hash) config_.index_hash = default_index_hash;
  shard_budget_ = config_.max_bytes / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(&config_.index_hash));
  }
}

TileStore::Shard& TileStore::shard_of(const TileKey& key) {
  return *shards_[static_cast<std::size_t>(config_.index_hash(key) %
                                           shards_.size())];
}

const TileStore::Shard& TileStore::shard_of(const TileKey& key) const {
  return *shards_[static_cast<std::size_t>(config_.index_hash(key) %
                                           shards_.size())];
}

TileStore::Checkout TileStore::probe(const TileKey& key) {
  Shard& shard = shard_of(key);
  util::MutexLock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Checkout{};
  }
  // Refresh recency and pin under the shard lock; the pin is what keeps the
  // entry alive once the lock drops.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  it->second->pins.fetch_add(1, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return Checkout{&*it->second};
}

bool TileStore::contains(const TileKey& key) const {
  const Shard& shard = shard_of(key);
  util::MutexLock lock(shard.mutex);
  return shard.index.contains(key);
}

TileStore::PublishOutcome TileStore::publish(const TileKey& key,
                                             render::Framebuffer&& pixels) {
  DCSN_CHECK(pixels.width() == key.width && pixels.height() == key.height,
             "published tile dimensions must match its key's rectangle");
  const std::uint64_t incoming = pixels.byte_size();
  PublishOutcome outcome;
  if (incoming > shard_budget_) {
    // Larger than a whole shard's budget: uncacheable, not an error — huge
    // tiles simply render uncached.
    rejects_.fetch_add(1, std::memory_order_relaxed);
    discard(std::move(pixels));
    return outcome;
  }
  Shard& shard = shard_of(key);
  std::vector<render::Framebuffer> evicted;  // recycled outside the lock
  {
    util::MutexLock lock(shard.mutex);
    if (shard.index.contains(key)) {
      // First writer wins. Entries are immutable, and bit-determinism means
      // the loser's pixels are identical anyway.
      duplicates_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Evict strictly from the LRU tail, skipping pinned entries. The
      // acquire load pairs with Checkout::reset's release decrement: once
      // it reads zero, every reader of the entry's pixels is done.
      auto victim = shard.lru.end();
      while (shard.bytes + incoming > shard_budget_ &&
             victim != shard.lru.begin()) {
        --victim;
        if (victim->pins.load(std::memory_order_acquire) != 0) continue;
        shard.bytes -= victim->pixels.byte_size();
        shard.index.erase(victim->key);
        evicted.push_back(std::move(victim->pixels));
        victim = shard.lru.erase(victim);
        ++outcome.evicted;
      }
      if (shard.bytes + incoming > shard_budget_) {
        // Only pinned entries remain in the way; never overshoot, never
        // evict a live checkout — refuse instead.
        rejects_.fetch_add(1, std::memory_order_relaxed);
      } else {
        shard.lru.emplace_front(key, std::move(pixels));
        shard.index.emplace(key, shard.lru.begin());
        shard.bytes += incoming;
        inserts_.fetch_add(1, std::memory_order_relaxed);
        outcome.inserted = true;
      }
    }
    DCSN_CHECK(shard.bytes <= shard_budget_,
               "tile store shard exceeded its byte budget");
  }
  evictions_.fetch_add(outcome.evicted, std::memory_order_relaxed);
  if (!outcome.inserted) discard(std::move(pixels));
  for (auto& fb : evicted) discard(std::move(fb));
  return outcome;
}

void TileStore::clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::vector<render::Framebuffer> dropped;
    {
      util::MutexLock lock(shard.mutex);
      for (auto it = shard.lru.begin(); it != shard.lru.end();) {
        if (it->pins.load(std::memory_order_acquire) != 0) {
          ++it;
          continue;
        }
        shard.bytes -= it->pixels.byte_size();
        shard.index.erase(it->key);
        dropped.push_back(std::move(it->pixels));
        it = shard.lru.erase(it);
      }
      DCSN_CHECK(shard.bytes <= shard_budget_,
                 "tile store shard exceeded its byte budget");
    }
    evictions_.fetch_add(static_cast<std::int64_t>(dropped.size()),
                         std::memory_order_relaxed);
    for (auto& fb : dropped) discard(std::move(fb));
  }
}

TileStore::Stats TileStore::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.duplicates = duplicates_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.rejects = rejects_.load(std::memory_order_relaxed);
  s.budget_bytes = config_.max_bytes;
  for (const auto& shard_ptr : shards_) {
    util::MutexLock lock(shard_ptr->mutex);
    s.entries += static_cast<std::int64_t>(shard_ptr->lru.size());
    s.bytes += shard_ptr->bytes;
  }
  return s;
}

void TileStore::discard(render::Framebuffer&& fb) {
  if (config_.recycle != nullptr) config_.recycle->release(std::move(fb));
}

}  // namespace dcsn::core
