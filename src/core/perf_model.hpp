// The paper's analytic performance model (eq. 2.1 and eq. 3.2) and the
// balanced-resource-allocation advisor built on it.
//
//   T_serial(N)       = max( N*genP, N*genT )
//   T_dnc(N, nP, nG)  = max( N*genP/nP, N*genT/nG ) + c(nG)
//
// genP/genT are per-spot costs; c is the sequential gather overhead, linear
// in the number of pipes (one readback + blend per pipe) plus a fixed term.
// calibrate() fits these constants from measured FrameStats so the model
// can be validated against measurements (bench_model_vs_measured) and used
// to answer the paper's §3 question: how many processors per pipe before
// the pipe saturates?
#pragma once

#include <cstdint>

#include "core/dnc_synthesizer.hpp"

namespace dcsn::core {

struct PerfModelParams {
  double genP_per_spot = 0.0;   ///< seconds of CPU work per spot
  double genT_per_spot = 0.0;   ///< seconds of pipe work per spot
  double gather_per_pipe = 0.0; ///< seconds of sequential gather per pipe
  double fixed_overhead = 0.0;  ///< per-frame constant (barriers, dispatch)
};

class PerfModel {
 public:
  PerfModel() = default;
  explicit PerfModel(PerfModelParams params) : params_(params) {}

  /// Fits genP/genT from a measured frame (any configuration) and the
  /// gather term from the same frame's gather time.
  [[nodiscard]] static PerfModel calibrate(const FrameStats& frame, int pipes_used);

  /// eq. 2.1: single processor, single pipe, full overlap.
  [[nodiscard]] double predict_serial(std::int64_t spots) const;

  /// eq. 3.2.
  [[nodiscard]] double predict(std::int64_t spots, int processors, int pipes) const;

  /// eq. 3.2 under temporal reuse (the incremental path): only
  /// `spots_rendered` of the population regenerate — spread over all
  /// processors, since clean-tile workers steal for dirty groups — and
  /// rasterize on the `pipes - tiles_reused` dirty pipes, whose readbacks
  /// are the only surviving share of the gather term. FrameStats supplies
  /// the inputs: spots_submitted for `spots_rendered`, tiles_reused
  /// verbatim.
  [[nodiscard]] double predict_incremental(std::int64_t spots_rendered,
                                           int processors, int pipes,
                                           int tiles_reused) const;

  /// Textures/second, the unit of the paper's tables.
  [[nodiscard]] double predict_rate(std::int64_t spots, int processors,
                                    int pipes) const {
    const double t = predict(spots, processors, pipes);
    return t > 0.0 ? 1.0 / t : 0.0;
  }

  /// The processor count at which one pipe saturates: beyond this, adding
  /// processors to the group cannot help (paper §5.1: "approximately 4").
  [[nodiscard]] double processors_per_pipe_balance() const;

  /// Combined per-spot cost estimate (CPU shape calculation + pipe raster).
  /// This is the *absolute* calibration behind cost-guided tile assignment:
  /// per-tile work is estimated as Σ weights * per_spot_seconds(). The
  /// kd-cut itself is scale-invariant, so only the relative weights move
  /// the cuts (DncSynthesizer::estimate_spot_costs derives those from the
  /// local field); this constant converts them to seconds for advisors and
  /// benches.
  [[nodiscard]] double per_spot_seconds() const {
    return params_.genP_per_spot + params_.genT_per_spot;
  }

  [[nodiscard]] const PerfModelParams& params() const { return params_; }

 private:
  PerfModelParams params_;
};

/// Exhaustive search over machine configurations using the model.
struct AllocationChoice {
  int processors = 1;
  int pipes = 1;
  double predicted_seconds = 0.0;
};

/// Best (processors, pipes) for the workload within the machine limits.
[[nodiscard]] AllocationChoice best_allocation(const PerfModel& model,
                                               std::int64_t spots, int max_processors,
                                               int max_pipes);

}  // namespace dcsn::core
