// Deterministic fault injection for the synthesis runtime.
//
// Robustness claims are only as good as the failures they were tested
// against, and failures produced by real races are unrepeatable by
// definition. The FaultInjector makes them repeatable: named sites in the
// hot paths (worker pickup, pipe submit, field sampling, tile-store
// probe/publish, framebuffer checkout, master queue pop) consult a seeded
// schedule that can throw, delay, or drop at each visit — with no wall
// clocks and no std::rand, so scripts/determinism_lint.py stays green and a
// torture run replays exactly from its seed.
//
// The schedule is a pure hash, not a shared counter, and that distinction
// carries the replay guarantee. Sites split into two classes:
//
//   * OUTCOME sites (pipe submit, field sampling, store probe/publish,
//     framebuffer checkout) decide from a *stable key*: the job's per-attempt
//     fault key XOR the spot/tile identity. Which thread reaches the site,
//     and in what order, cannot change the decision — so the set of faults a
//     frame attempt absorbs (and therefore whether it fails, how much
//     injected delay it is charged, and what the service's retry/timeout/
//     degraded counters read at the end) is a pure function of the seed and
//     the workload, independent of scheduling. bench_robustness replays a
//     seed twice and demands identical counters; this is why it can.
//
//   * SCHEDULING sites (worker task pickup, master queue pop) are keyed by a
//     per-site arrival counter and perturb only *when* work happens, never
//     its outcome: a drop at queue pop models a spurious timeout, a drop at
//     worker pickup models a worker that offers no capacity this round, and
//     delays model preemption. Throws are demoted to drops here — a throw
//     escaping a pool worker's loop would kill the thread, which is an
//     outage, not a fault. Their counters are telemetry only and are NOT
//     replay-stable (arrival order is scheduling), which is exactly why no
//     frame outcome may depend on them.
//
// Injected delays do not sleep: they charge nanoseconds to the bound frame's
// penalty accumulator (FrameControl::delay_penalty_ns), which the engine
// checks against the job's deadline budget at chunk granularity — virtual
// time, deterministic timeouts. An optional spin adds real CPU occupancy for
// wall-clock stress without touching any clock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace dcsn::core {

enum class FaultSite : int {
  kWorkerPickup = 0,    ///< Runtime::worker_loop offering capacity (scheduling)
  kQueuePop,            ///< a master's timed inbox wait (scheduling)
  kPipeSubmit,          ///< a command buffer handed to a pipe (outcome)
  kFieldSample,         ///< spot-shape generation touching the field (outcome)
  kStoreProbe,          ///< TileStore lookup before rendering (outcome, contained)
  kStorePublish,        ///< TileStore insert after rendering (outcome, contained)
  kFramebufferCheckout, ///< FramebufferPool::acquire in the gather (outcome)
};
inline constexpr int kFaultSiteCount = 7;

[[nodiscard]] const char* fault_site_name(FaultSite site);

/// Thrown by an outcome site on a throw-hit. Derives util::TransientError:
/// the frame failed because of an injected transient, so SubmitOptions
/// retries apply.
class FaultInjected : public util::TransientError {
 public:
  explicit FaultInjected(FaultSite site)
      : util::TransientError(std::string("injected fault at ") +
                             fault_site_name(site)),
        site_(site) {}
  [[nodiscard]] FaultSite site() const { return site_; }

 private:
  FaultSite site_;
};

/// Per-site fault probabilities. Rates are evaluated in order throw, delay,
/// drop against one uniform draw, so their sum should stay <= 1.
struct FaultRule {
  double throw_rate = 0.0;
  double delay_rate = 0.0;
  double drop_rate = 0.0;
  /// Virtual seconds charged to the frame's delay penalty on a delay-hit.
  double delay_seconds = 0.0;
  /// Optional busy-spin iterations per delay-hit (real CPU occupancy for
  /// wall-clock stress; 0 keeps delays purely virtual).
  std::int64_t delay_spin_iterations = 0;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::array<FaultRule, kFaultSiteCount> rules{};

  [[nodiscard]] FaultRule& rule(FaultSite site) {
    return rules[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] const FaultRule& rule(FaultSite site) const {
    return rules[static_cast<std::size_t>(site)];
  }
};

class FaultInjector {
 public:
  enum class Action { kNone, kThrow, kDelay, kDrop };

  /// Per-site visit/outcome counters. Outcome-site totals are replay-stable
  /// over a full run (see the header comment); scheduling-site totals are
  /// telemetry only.
  struct Counters {
    std::array<std::int64_t, kFaultSiteCount> evaluations{};
    std::array<std::int64_t, kFaultSiteCount> throws{};
    std::array<std::int64_t, kFaultSiteCount> delays{};
    std::array<std::int64_t, kFaultSiteCount> drops{};

    [[nodiscard]] std::int64_t total_injected() const {
      std::int64_t n = 0;
      for (int s = 0; s < kFaultSiteCount; ++s) {
        n += throws[static_cast<std::size_t>(s)] +
             delays[static_cast<std::size_t>(s)] +
             drops[static_cast<std::size_t>(s)];
      }
      return n;
    }
  };

  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// The pure scheduling-independent decision for one (site, key) visit.
  [[nodiscard]] Action decide(FaultSite site, std::uint64_t key) const;

  /// Outcome-site check with a stable key. Throws FaultInjected on a
  /// throw-hit; on a delay-hit charges the rule's delay to `penalty_ns` (if
  /// provided) and spins; returns the action so drop-capable call sites can
  /// degrade instead.
  Action check(FaultSite site, std::uint64_t key,
               std::atomic<std::int64_t>* penalty_ns = nullptr);

  /// Scheduling-site check, keyed by the site's arrival counter. Never
  /// throws: a throw-hit is demoted to a drop (see the header comment).
  Action check_scheduling(FaultSite site);

  /// A set of pure decisions drawn ahead of their effect site. Used when
  /// the stable identities (per-spot keys) are only in scope at one place
  /// but the fault must strike at another: the producer pre-draws while it
  /// still knows which spots a chunk carries, and the submitting thread
  /// applies the batch where the failure actually happens.
  struct Batch {
    std::int64_t evaluations = 0;
    std::int64_t throws = 0;
    std::int64_t delays = 0;
    std::int64_t drops = 0;
  };

  /// Accumulates decide(site, key) into `batch` (pure; no counters yet).
  void predraw(FaultSite site, std::uint64_t key, Batch* batch) const;

  /// Applies a pre-drawn batch at its effect site: records the counters,
  /// charges every delay-hit to `penalty_ns` (delays first, so a mixed
  /// batch charges deterministically), then throws FaultInjected if the
  /// batch holds any throw-hit.
  void apply(FaultSite site, const Batch& batch,
             std::atomic<std::int64_t>* penalty_ns = nullptr);

  [[nodiscard]] Counters counters() const;
  void reset_counters();

 private:
  struct SiteCounters {
    std::atomic<std::int64_t> evaluations{0};
    std::atomic<std::int64_t> throws{0};
    std::atomic<std::int64_t> delays{0};
    std::atomic<std::int64_t> drops{0};
    std::atomic<std::uint64_t> arrivals{0};  ///< scheduling-site key source
  };

  void account(FaultSite site, Action action);

  FaultPlan plan_;  // lock-lint: unguarded(immutable after construction)
  // Atomic per-site tallies; no mutex needed.
  std::array<SiteCounters, kFaultSiteCount> counters_{};  // lock-lint: unguarded(internally synchronized)
};

}  // namespace dcsn::core
