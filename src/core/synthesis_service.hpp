// Asynchronous multi-session synthesis service.
//
// The paper's engine serves exactly one interactive user; the ROADMAP's
// north star is a system serving many. SynthesisService is that front end:
// clients open sessions (one engine + one temporal cache each, all
// borrowing pipes/workers/buffers from one shared core::Runtime) and submit
// frames as asynchronous jobs:
//
//   submit(session, request) → JobTicket (a future of FrameStats + texture
//   fingerprint), with per-session priority, FIFO order *within* a session
//   (frames of an animation must stay ordered), round-robin fairness
//   *between* sessions of equal priority, best-effort cancellation (mid-
//   frame cancels ride the engine's frame-failure protocol and surface as
//   JobCanceled), and graceful shutdown (drain or cancel the backlog).
//
// Driver threads dispatch jobs onto sessions — at most one frame in flight
// per session, because an engine is not re-entrant — and the runtime's
// pool workers flow to whichever frames have work, so N quiet sessions
// cost nothing and one loaded session can use the whole pool. A failing
// session (a job whose field throws mid-frame) reports through its own
// ticket and poisons nothing: the engine's failure protocol rearms it for
// the next job, and other sessions never notice.
//
// Determinism note: because rasterization is target-independent and
// accumulation lattice-exact (PR 4), a frame's pixels — and therefore its
// content_hash — are identical whether its session ran alone or multiplexed
// with any number of others. tests/test_service.cpp pins exactly that.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/runtime.hpp"
#include "core/synthesis_cache.hpp"
#include "util/thread_annotations.hpp"

namespace dcsn::core {

struct ServiceConfig {
  /// Driver threads = sessions that can be mid-frame simultaneously.
  int drivers = 2;
};

/// One frame's worth of work for a session. `field` must stay valid until
/// the job's future resolves; `spots` is an owned snapshot.
struct SynthesisRequest {
  const field::VectorField* field = nullptr;
  std::vector<SpotInstance> spots;
  /// Plan through the session's SynthesisCache (tiled engines only): clean
  /// tiles are served from retention, bit-identical to a full render.
  bool incremental = false;
  /// Copy the finished texture into the result (costs one texture copy;
  /// the content hash is always included).
  bool capture_texture = false;
};

struct SynthesisResult {
  FrameStats stats;
  /// Framebuffer::content_hash of the finished texture — the bit-exact
  /// frame identity (stable across sessions, scheduling and sharing).
  std::uint64_t content_hash = 0;
  /// Global dispatch ordinal: the order drivers started jobs in. Lets
  /// clients (and the fairness tests) observe the scheduling order.
  std::int64_t service_seq = 0;
  std::optional<render::Framebuffer> texture;  ///< when capture_texture
};

class SynthesisService {
 public:
  using SessionId = std::int64_t;
  using JobId = std::int64_t;

  struct JobTicket {
    JobId id = 0;
    SessionId session = 0;
    /// Resolves with the result, or throws: JobCanceled for canceled jobs,
    /// the frame's exception for failed ones.
    std::future<SynthesisResult> result;
  };

  explicit SynthesisService(ServiceConfig config = {},
                            Runtime& runtime = Runtime::global());
  ~SynthesisService();  // shutdown(true)

  SynthesisService(const SynthesisService&) = delete;
  SynthesisService& operator=(const SynthesisService&) = delete;

  /// Creates a session: one engine + temporal cache on the shared runtime.
  /// Higher `priority` sessions are dispatched first; equal priorities
  /// round-robin.
  [[nodiscard]] SessionId open_session(const SynthesisConfig& synthesis,
                                       const DncConfig& dnc, int priority = 0);

  /// Cancels the session's pending jobs (their futures get JobCanceled) and
  /// tears the engine down once any running job finishes.
  void close_session(SessionId id);

  /// Enqueues one frame. Throws util::Error if the service is shutting
  /// down or the session is unknown/closed.
  [[nodiscard]] JobTicket submit(SessionId id, SynthesisRequest request);

  /// Best-effort cancel: a pending job is removed from its queue and its
  /// future gets JobCanceled immediately; a running job's engine abandons
  /// the frame at the next chunk boundary. Returns false when the job
  /// already completed (or was never known).
  bool cancel(JobId id);

  /// Stops accepting work. With `drain`, queued jobs still run to
  /// completion; without, pending futures get JobCanceled and running
  /// frames are canceled mid-flight. Joins the drivers; idempotent.
  void shutdown(bool drain = true);

  [[nodiscard]] int pending_jobs() const;
  [[nodiscard]] Runtime& runtime() const { return *runtime_; }

  /// Snapshot of the runtime's shared content-addressed tile cache (see
  /// core::TileStore). Sessions opted in via DncConfig::tile_cache publish
  /// and probe the same store, so these counters are how a deployment
  /// observes cross-session sharing actually happening.
  [[nodiscard]] TileStore::Stats tile_cache_stats() const {
    return runtime_->tile_store().stats();
  }

 private:
  enum class JobState { kPending, kRunning, kDone };

  struct Job {
    JobId id = 0;
    SessionId session = 0;
    SynthesisRequest request;
    std::promise<SynthesisResult> promise;
    std::atomic<bool> cancel{false};  ///< the engine's per-job cancel token
    util::Stopwatch queued;           ///< submit → dispatch = queue wait
    JobState state = JobState::kPending;  // guarded by mutex_
  };

  struct Session {
    SessionId id = 0;
    int priority = 0;
    std::unique_ptr<DncSynthesizer> engine;
    SynthesisCache cache;
    std::deque<std::shared_ptr<Job>> queue;  ///< per-session FIFO
    bool running = false;  ///< a driver is mid-frame on this engine
    bool closed = false;
    std::int64_t last_served = 0;  ///< fairness clock (round-robin)
  };

  void driver_loop();
  /// Highest-priority session with a runnable head job; equal priorities go
  /// to the least recently served.
  [[nodiscard]] Session* pick_session() DCSN_REQUIRES(mutex_);
  void run_job(Session& session, Job& job, std::int64_t seq);
  /// Fails every pending job of `session` with JobCanceled.
  void cancel_pending(Session& session) DCSN_REQUIRES(mutex_);

  Runtime* runtime_;        // lock-lint: unguarded(immutable after construction)
  ServiceConfig config_;    // lock-lint: unguarded(immutable after construction)

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  std::map<SessionId, std::unique_ptr<Session>> sessions_ DCSN_GUARDED_BY(mutex_);
  /// Pending + running.
  std::map<JobId, std::shared_ptr<Job>> jobs_ DCSN_GUARDED_BY(mutex_);
  SessionId next_session_id_ DCSN_GUARDED_BY(mutex_) = 1;
  JobId next_job_id_ DCSN_GUARDED_BY(mutex_) = 1;
  std::int64_t serve_clock_ DCSN_GUARDED_BY(mutex_) = 0;
  bool accepting_ DCSN_GUARDED_BY(mutex_) = true;
  bool shutdown_ DCSN_GUARDED_BY(mutex_) = false;
  bool drain_ DCSN_GUARDED_BY(mutex_) = true;

  /// Joined by shutdown(), which must not hold mutex_ there (a driver being
  /// joined takes mutex_ to drain the backlog — holding it would deadlock).
  std::vector<std::jthread> drivers_;  // lock-lint: unguarded(joined unlocked in shutdown)
};

}  // namespace dcsn::core
