// Asynchronous multi-session synthesis service.
//
// The paper's engine serves exactly one interactive user; the ROADMAP's
// north star is a system serving many. SynthesisService is that front end:
// clients open sessions (one engine + one temporal cache each, all
// borrowing pipes/workers/buffers from one shared core::Runtime) and submit
// frames as asynchronous jobs:
//
//   submit(session, request, options) → JobTicket (a future of FrameStats +
//   texture fingerprint), with per-session priority, FIFO order *within* a
//   session (frames of an animation must stay ordered), round-robin
//   fairness *between* sessions of equal priority, best-effort cancellation
//   (mid-frame cancels ride the engine's frame-failure protocol and surface
//   as JobCanceled), and graceful shutdown (drain or cancel the backlog).
//
// Driver threads dispatch jobs onto sessions — at most one frame in flight
// per session, because an engine is not re-entrant — and the runtime's
// pool workers flow to whichever frames have work, so N quiet sessions
// cost nothing and one loaded session can use the whole pool. A failing
// session (a job whose field throws mid-frame) reports through its own
// ticket and poisons nothing: the engine's failure protocol rearms it for
// the next job, and other sessions never notice.
//
// Fault tolerance (see docs/ARCHITECTURE.md "Fault tolerance & SLOs"):
//
//   * Deadlines. SubmitOptions::deadline_seconds bounds a job end to end.
//     Enforcement rides the engine's per-job FrameControl at chunk
//     granularity: injected virtual delays are charged against the budget
//     deterministically, and in wall mode the watchdog additionally flags
//     jobs past their deadline or making no chunk progress. A blown
//     deadline surfaces as core::JobTimedOut — or as a flagged degraded
//     frame (stale pixels, FrameStats::degraded) under DeadlinePolicy::
//     kDegrade.
//   * Retries. Transient frame failures (injected or real — anything but
//     JobCanceled / JobTimedOut) re-dispatch up to max_retries times with
//     bounded exponential backoff measured on the service clock.
//   * Circuit breaker. A session whose jobs fail repeatedly is quarantined:
//     new submits throw SessionQuarantined, queued jobs hold until the
//     cooldown elapses, then a single half-open probe decides re-close vs
//     re-open — one toxic field callback cannot monopolize pool drivers.
//   * Admission control. With a calibrated PerfModel (one completed frame),
//     DeadlinePolicy::kReject submissions that cannot meet their deadline
//     under the current queue depth throw JobRejected immediately instead
//     of wasting a dispatch.
//   * health() exposes all of it: per-session breaker state plus
//     retry/timeout/degraded/failure counters and service totals.
//
// Determinism note: because rasterization is target-independent and
// accumulation lattice-exact (PR 4), a frame's pixels — and therefore its
// content_hash — are identical whether its session ran alone or multiplexed
// with any number of others. tests/test_service.cpp pins exactly that; with
// a VirtualServiceClock and a seeded FaultInjector, bench_robustness
// additionally pins that a whole faulted run replays to identical health
// counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/perf_model.hpp"
#include "core/runtime.hpp"
#include "core/service_clock.hpp"
#include "core/synthesis_cache.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"

namespace dcsn::core {

/// Thrown by submit() when admission control predicts the job cannot meet
/// its deadline under the current queue depth (DeadlinePolicy::kReject):
/// rejecting at the door is cheaper than timing out after a dispatch.
class JobRejected : public util::Error {
 public:
  JobRejected() : util::Error("job rejected at admission: deadline unmeetable") {}
};

/// Thrown by submit() while the session's circuit breaker is open.
class SessionQuarantined : public util::Error {
 public:
  SessionQuarantined()
      : util::Error("session quarantined: circuit breaker open") {}
};

struct ServiceConfig {
  /// Driver threads = sessions that can be mid-frame simultaneously.
  int drivers = 2;
  /// Deterministic time source for backoff, breaker cooldowns and
  /// deadlines. Null (the default) uses wall time; tests and replay
  /// harnesses inject a VirtualServiceClock, which idle drivers advance
  /// discrete-event style to the earliest pending retry/cooldown instant.
  /// Must outlive the service.
  VirtualServiceClock* virtual_clock = nullptr;
  /// Consecutive job failures that open a session's circuit breaker.
  int breaker_failure_threshold = 3;
  /// Seconds (on the service clock) an open breaker holds before allowing
  /// a half-open probe.
  double breaker_cooldown_seconds = 0.25;
  /// Model-based admission control for DeadlinePolicy::kReject/kDegrade
  /// (needs one completed frame to calibrate the session's PerfModel).
  /// Replay harnesses disable it: calibration is measured time, which is
  /// not replay-stable.
  bool admission_control = true;
  /// Watchdog poll period (wall seconds); <= 0 disables the watchdog
  /// thread. The watchdog flags running jobs past their wall deadline and
  /// jobs making no chunk progress.
  double watchdog_interval_seconds = 0.05;
  /// Wall seconds of zero chunk progress before the watchdog times a
  /// running job out (<= 0 disables the no-progress check).
  double watchdog_no_progress_seconds = 30.0;
  /// Priority aging, in dispatches: a waiting session's head job gains one
  /// effective priority level for every `priority_aging_dispatches` jobs the
  /// service dispatched while it waited, so strict priorities cannot starve
  /// a low-priority session while a higher one keeps its queue full. Counted
  /// on the deterministic dispatch clock (serve_clock_), never wall time, so
  /// the dispatch order of a replayed submission program is replay-stable in
  /// both wall and virtual-clock modes. 0 disables aging (strict
  /// priorities — the pre-aging starvation behavior).
  int priority_aging_dispatches = 8;
  /// Chunk-granularity preemption: when every driver is busy and a pending
  /// job's deadline is at risk (slack below `yield_risk_factor` times its
  /// predicted frame time), the running job with the most slack and no
  /// higher priority is asked to yield at its next chunk checkpoint. The
  /// yielded job returns to the front of its queue with the attempt counter
  /// rolled back — same fault schedule, no retry budget consumed. Needs
  /// admission_control (predictions are measured, not replay-stable), so
  /// replay harnesses are unaffected. <= 0 disables preemption.
  double yield_risk_factor = 1.5;
  /// Most yields one job may absorb before it becomes immune to further
  /// preemption — bounds the work wasted on abandoned attempts.
  int max_job_yields = 4;
};

/// Per-job service-level options: the deadline/retry/degradation contract.
struct SubmitOptions {
  /// What to do when the deadline cannot be (or was not) met.
  enum class DeadlinePolicy {
    kStrict,   ///< run regardless; a blown deadline fails with JobTimedOut
    kReject,   ///< admission-reject (JobRejected) when predicted unmeetable
    kDegrade,  ///< serve a flagged stale frame instead of failing
  };

  /// End-to-end budget on the service clock, measured from submit. The
  /// in-flight half is enforced at chunk granularity: injected delays count
  /// against it deterministically, wall time via the watchdog. Infinity
  /// disables deadline handling.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// Re-dispatch attempts after transient frame failures (anything except
  /// JobCanceled / JobTimedOut). 0 fails on the first error.
  int max_retries = 0;
  /// First-retry backoff on the service clock; each further retry doubles
  /// it (backoff_multiplier), capped at backoff_max_seconds.
  double backoff_seconds = 0.005;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 1.0;
  DeadlinePolicy policy = DeadlinePolicy::kStrict;
};

/// One frame's worth of work for a session. `field` must stay valid until
/// the job's future resolves; `spots` is an owned snapshot.
struct SynthesisRequest {
  const field::VectorField* field = nullptr;
  std::vector<SpotInstance> spots;
  /// Plan through the session's SynthesisCache (tiled engines only): clean
  /// tiles are served from retention, bit-identical to a full render.
  bool incremental = false;
  /// Copy the finished texture into the result (costs one texture copy;
  /// the content hash is always included).
  bool capture_texture = false;
};

struct SynthesisResult {
  FrameStats stats;
  /// Framebuffer::content_hash of the finished texture — the bit-exact
  /// frame identity (stable across sessions, scheduling and sharing). For
  /// a degraded result (stats.degraded) this is the stale texture's hash.
  std::uint64_t content_hash = 0;
  /// Global dispatch ordinal: the order drivers started jobs in. Lets
  /// clients (and the fairness tests) observe the scheduling order.
  std::int64_t service_seq = 0;
  /// Dispatch attempts consumed (1 = no retries).
  int attempts = 1;
  std::optional<render::Framebuffer> texture;  ///< when capture_texture
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* breaker_state_name(BreakerState state);

/// One session's slice of health(). Counters are cumulative for the
/// session's lifetime.
struct SessionHealth {
  std::int64_t id = 0;
  int priority = 0;
  BreakerState breaker = BreakerState::kClosed;
  int consecutive_failures = 0;
  std::int64_t breaker_trips = 0;
  std::int64_t completed = 0;  ///< synthesized frames (degraded excluded)
  std::int64_t degraded = 0;   ///< stale frames served under deadline pressure
  std::int64_t failed = 0;     ///< jobs that exhausted retries and failed
  std::int64_t retries = 0;    ///< re-dispatches after transient failures
  std::int64_t timeouts = 0;   ///< jobs that blew their deadline
  std::int64_t canceled = 0;
  std::int64_t yielded = 0;    ///< attempts abandoned for a more urgent job
  int pending = 0;
  bool running = false;
};

struct ServiceHealth {
  /// Service-lifetime totals: unlike the per-session rows these survive
  /// close_session, so they are the replay-comparison surface.
  std::int64_t completed = 0;
  std::int64_t degraded = 0;
  std::int64_t failed = 0;
  std::int64_t retries = 0;
  std::int64_t timeouts = 0;
  std::int64_t canceled = 0;
  std::int64_t rejected = 0;     ///< JobRejected at admission
  std::int64_t quarantined = 0;  ///< SessionQuarantined at submit
  std::int64_t yielded = 0;      ///< attempts abandoned for a more urgent job
  std::int64_t breaker_trips = 0;
  double clock_now = 0.0;  ///< service-clock reading at the snapshot
  std::vector<SessionHealth> sessions;  ///< open sessions, by id
};

class SynthesisService {
 public:
  using SessionId = std::int64_t;
  using JobId = std::int64_t;

  struct JobTicket {
    JobId id = 0;
    SessionId session = 0;
    /// Resolves with the result, or throws: JobCanceled for canceled jobs,
    /// JobTimedOut for blown deadlines, the frame's exception for failed
    /// ones.
    std::future<SynthesisResult> result;
  };

  explicit SynthesisService(ServiceConfig config = {},
                            Runtime& runtime = Runtime::global());
  ~SynthesisService();  // shutdown(true)

  SynthesisService(const SynthesisService&) = delete;
  SynthesisService& operator=(const SynthesisService&) = delete;

  /// Creates a session: one engine + temporal cache on the shared runtime.
  /// Higher `priority` sessions are dispatched first; equal priorities
  /// round-robin. Throws util::Error after shutdown began.
  [[nodiscard]] SessionId open_session(const SynthesisConfig& synthesis,
                                       const DncConfig& dnc, int priority = 0);

  /// Cancels the session's pending jobs (their futures get JobCanceled) and
  /// tears the engine down once any running job finishes.
  void close_session(SessionId id);

  /// Enqueues one frame. Throws util::Error if the service is shutting
  /// down or the session is unknown/closed, SessionQuarantined while the
  /// session's breaker is open, and JobRejected when admission control
  /// predicts the deadline unmeetable (DeadlinePolicy::kReject).
  [[nodiscard]] JobTicket submit(SessionId id, SynthesisRequest request,
                                 SubmitOptions options = SubmitOptions());

  /// Best-effort cancel: a pending job is removed from its queue and its
  /// future gets JobCanceled immediately; a running job's engine abandons
  /// the frame at the next chunk boundary. Returns false when the job
  /// already completed (or was never known).
  bool cancel(JobId id);

  /// Stops accepting work. With `drain`, queued jobs still run to
  /// completion (including retry waits); without, pending futures get
  /// JobCanceled and running frames are canceled mid-flight. Joins the
  /// drivers and watchdog; idempotent; concurrent open_session/submit
  /// deterministically throw util::Error.
  void shutdown(bool drain = true);

  /// Snapshot of breaker states and fault-tolerance counters.
  [[nodiscard]] ServiceHealth health() const;

  [[nodiscard]] int pending_jobs() const;
  [[nodiscard]] Runtime& runtime() const { return *runtime_; }

  /// Snapshot of the runtime's shared content-addressed tile cache (see
  /// core::TileStore). Sessions opted in via DncConfig::tile_cache publish
  /// and probe the same store, so these counters are how a deployment
  /// observes cross-session sharing actually happening.
  [[nodiscard]] TileStore::Stats tile_cache_stats() const {
    return runtime_->tile_store().stats();
  }

 private:
  enum class JobState { kPending, kRunning, kDone };

  /// What a dispatch attempt decided (applied to the books under mutex_).
  enum class Outcome {
    kCompleted, kDegraded, kCanceled, kTimedOut, kFailed, kRetry, kYielded,
  };

  /// How the driver should treat the job it just popped (decided under
  /// mutex_ at dispatch, where the clock and the session model are
  /// consistent).
  enum class DispatchMode { kRun, kDegrade, kTimeout };

  struct Job {
    JobId id = 0;
    SessionId session = 0;
    std::int64_t session_ordinal = 0;  ///< per-session submit index
    SynthesisRequest request;
    SubmitOptions options;
    std::promise<SynthesisResult> promise;
    /// Cancel/timeout flags, delay penalty, progress heartbeat and fault
    /// key — bound to the engine for each dispatch attempt. The atomics
    /// inside are internally synchronized; the scalars follow `state`.
    FrameControl control;
    util::Stopwatch queued;  ///< submit → dispatch = queue wait (wall)
    double deadline_at = std::numeric_limits<double>::infinity();  // service clock; guarded by mutex_
    double not_before = 0.0;  ///< earliest dispatch (backoff); guarded by mutex_
    int attempt = 0;          ///< dispatches so far; guarded by mutex_
    /// serve_clock_ at submit — the birth instant priority aging measures
    /// waited dispatches from (kept across retries and yields, so a long
    /// wait keeps counting). Guarded by mutex_.
    std::int64_t enqueued_at_serve = 0;
    int yields = 0;  ///< preemptions absorbed (bounded); guarded by mutex_
    JobState state = JobState::kPending;  // guarded by mutex_
    // Watchdog bookkeeping (wall mode): last observed progress + stall ticks.
    std::int64_t watch_progress = -1;  // guarded by mutex_
    int watch_stalls = 0;              // guarded by mutex_
  };

  struct Session {
    SessionId id = 0;
    int priority = 0;
    std::unique_ptr<DncSynthesizer> engine;
    SynthesisCache cache;
    std::deque<std::shared_ptr<Job>> queue;  ///< per-session FIFO
    bool running = false;  ///< a driver is mid-frame on this engine
    bool closed = false;
    std::int64_t last_served = 0;   ///< fairness clock (round-robin)
    std::int64_t submitted = 0;     ///< session_ordinal source
    // Circuit breaker (all guarded by mutex_).
    BreakerState breaker = BreakerState::kClosed;
    double breaker_open_until = 0.0;  ///< service clock
    int consecutive_failures = 0;
    // Admission model: calibrated from the last completed frame.
    PerfModel model;
    bool model_valid = false;
    // Cumulative counters for health().
    std::int64_t breaker_trips = 0;
    std::int64_t completed = 0;
    std::int64_t degraded = 0;
    std::int64_t failed = 0;
    std::int64_t retries = 0;
    std::int64_t timeouts = 0;
    std::int64_t canceled = 0;
    std::int64_t yielded = 0;
  };

  /// run_job's report back to the driver's bookkeeping pass. The attempt's
  /// verdict for the client rides here too: run_job never touches the
  /// promise, settle_job fulfills it *under the lock, after the counters* —
  /// so a caller whose future resolved always finds the outcome already
  /// reflected in health().
  struct RunResult {
    Outcome outcome = Outcome::kFailed;
    std::optional<PerfModel> model;  ///< fresh calibration on kCompleted
    std::optional<SynthesisResult> value;  ///< kCompleted / kDegraded payload
    std::exception_ptr error;              ///< kCanceled / kTimedOut / kFailed
  };

  void driver_loop();
  void watchdog_loop();
  /// Current service-clock reading (virtual when configured, else wall).
  [[nodiscard]] double clock_now() const {
    return config_.virtual_clock != nullptr ? config_.virtual_clock->now()
                                            : uptime_.seconds();
  }
  /// Highest *effective* priority session with a runnable head job — the
  /// configured priority plus dispatch-count aging (see
  /// ServiceConfig::priority_aging_dispatches) — equal effective priorities
  /// go to the least recently served. Sessions blocked on a future instant
  /// (backoff, breaker cooldown) lower `wake_at` instead. Performs the
  /// open → half-open breaker transition when a cooldown has elapsed.
  [[nodiscard]] Session* pick_session(double now, double* wake_at)
      DCSN_REQUIRES(mutex_);
  /// priority + age of the session's head job, in aging steps.
  [[nodiscard]] int effective_priority(const Session& session) const
      DCSN_REQUIRES(mutex_);
  /// Deadline-at-risk preemption (see ServiceConfig::yield_risk_factor):
  /// when every driver is busy and a pending head job's deadline is at
  /// risk, flags the most-slack running job of no higher priority to yield
  /// at its next chunk checkpoint. Called where the risk picture changes:
  /// submit (a new urgent job arrives) and the watchdog tick (waiting
  /// erodes slack).
  void maybe_preempt(double now) DCSN_REQUIRES(mutex_);
  /// Deadline triage for the job about to dispatch (see DispatchMode).
  [[nodiscard]] DispatchMode triage(const Session& session, const Job& job,
                                    double now) const DCSN_REQUIRES(mutex_);
  [[nodiscard]] RunResult run_job(Session& session, Job& job, std::int64_t seq,
                                  DispatchMode mode);
  /// Builds the flagged stale-frame result (DeadlinePolicy::kDegrade).
  [[nodiscard]] SynthesisResult degraded_result(Session& session, Job& job,
                                                std::int64_t seq) const;
  /// Applies a finished attempt to the books — counters, breaker, retry
  /// requeue — then fulfills the job's promise. Returns true when the job
  /// was requeued (kept in jobs_, promise still open).
  bool settle_job(Session& session, const std::shared_ptr<Job>& job,
                  RunResult& result) DCSN_REQUIRES(mutex_);
  void note_failure(Session& session) DCSN_REQUIRES(mutex_);
  /// Fails every pending job of `session` with JobCanceled.
  void cancel_pending(Session& session) DCSN_REQUIRES(mutex_);
  [[nodiscard]] bool any_running() const DCSN_REQUIRES(mutex_);

  Runtime* runtime_;        // lock-lint: unguarded(immutable after construction)
  ServiceConfig config_;    // lock-lint: unguarded(immutable after construction)
  // determinism: wall fallback of the service clock — scheduling/SLO
  // bookkeeping only, never pixels.
  util::Stopwatch uptime_;  // lock-lint: unguarded(immutable after construction)

  mutable util::Mutex mutex_;
  util::CondVar cv_;
  util::CondVar watchdog_cv_;  ///< paced separately from driver wakeups
  std::map<SessionId, std::unique_ptr<Session>> sessions_ DCSN_GUARDED_BY(mutex_);
  /// Pending + running.
  std::map<JobId, std::shared_ptr<Job>> jobs_ DCSN_GUARDED_BY(mutex_);
  SessionId next_session_id_ DCSN_GUARDED_BY(mutex_) = 1;
  JobId next_job_id_ DCSN_GUARDED_BY(mutex_) = 1;
  std::int64_t serve_clock_ DCSN_GUARDED_BY(mutex_) = 0;
  bool accepting_ DCSN_GUARDED_BY(mutex_) = true;
  bool shutdown_ DCSN_GUARDED_BY(mutex_) = false;
  bool drain_ DCSN_GUARDED_BY(mutex_) = true;
  /// Service-lifetime totals (the non-session fields of ServiceHealth).
  ServiceHealth totals_ DCSN_GUARDED_BY(mutex_);

  /// Joined by shutdown(), which must not hold mutex_ there (a driver being
  /// joined takes mutex_ to drain the backlog — holding it would deadlock).
  std::vector<std::jthread> drivers_;  // lock-lint: unguarded(joined unlocked in shutdown)
  std::jthread watchdog_;              // lock-lint: unguarded(joined unlocked in shutdown)
};

}  // namespace dcsn::core
