#include "core/pipelined_animator.hpp"

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace dcsn::core {

PipelinedAnimator::PipelinedAnimator(AnimatorConfig config,
                                     DncSynthesizer& synthesizer,
                                     particles::ParticleSystem& particles,
                                     Animator::ReadData read_data)
    : config_(config),
      synthesizer_(synthesizer),
      particles_(particles),
      read_data_(std::move(read_data)) {
  DCSN_CHECK(config_.advect_radius_fraction > 0.0, "advection step must be positive");
  DCSN_CHECK(static_cast<bool>(read_data_), "read_data callback required");
  DCSN_CHECK(!config_.incremental || synthesizer_.dnc_config().tiled,
             "incremental animation requires a tiled engine (per-tile retention)");
  current_ = prepare(0);  // prologue: the first frame cannot overlap
}

PipelinedAnimator::~PipelinedAnimator() {
  if (next_.valid()) next_.wait();  // a prepare task may still reference us
  if (filtered_) {
    // Scratch returns to the shared pool for other sessions.
    synthesizer_.runtime().framebuffers().release(std::move(*filtered_));
  }
}

PipelinedAnimator::Prepared PipelinedAnimator::prepare(std::int64_t frame) {
  const util::Stopwatch watch;
  Prepared p;
  const field::VectorField& f = read_data_(frame);
  p.field = &f;

  const SynthesisConfig& sc = synthesizer_.config();
  const double world_per_px = 0.5 * (f.domain().width() / sc.texture_width +
                                     f.domain().height() / sc.texture_height);
  const double max_mag = f.max_magnitude();
  const double dt = max_mag > 0.0 ? config_.advect_radius_fraction *
                                        sc.spot_radius_px * world_per_px / max_mag
                                  : 0.0;
  particles_.advance(f, dt);
  p.spots = spots_from_particles(particles_);
  p.prepare_seconds = watch.seconds();
  return p;
}

AnimationFrame PipelinedAnimator::step() {
  const util::Stopwatch total;
  AnimationFrame out;

  // Kick off preparation of frame n+1 on the shared runtime (tasks beat
  // frame service in the pool, so a session's own synthesis cannot starve
  // its pipeline prologue)...
  next_ = synthesizer_.runtime().async(
      [this, next_frame = frame_ + 1] { return prepare(next_frame); });

  // ...while frame n synthesizes on the engine. The engine never sees the
  // particle system, only the immutable snapshot taken by prepare(). The
  // temporal cache runs on this thread too: planning reads only the
  // snapshot and the engine, never the particle system the helper mutates.
  if (config_.incremental) {
    const SynthesisCache::Decision d =
        cache_.plan(synthesizer_, *current_.field, current_.spots);
    out.synthesis = synthesizer_.synthesize(*current_.field, current_.spots,
                                            d.incremental ? &d.plan : nullptr);
    cache_.commit(synthesizer_, *current_.field, std::move(current_.spots));
  } else {
    out.synthesis = synthesizer_.synthesize(*current_.field, current_.spots);
  }
  out.read_seconds = current_.prepare_seconds;  // combined read+advect cost
  out.advect_seconds = 0.0;                     // hidden inside read_seconds

  util::Stopwatch watch;
  if (config_.high_pass_radius > 0) {
    filtered_ = high_pass(synthesizer_.texture(), config_.high_pass_radius);
    if (config_.normalize) normalize_contrast(*filtered_);
    out.texture = &*filtered_;
  } else if (config_.normalize) {
    filtered_ = synthesizer_.texture();
    normalize_contrast(*filtered_);
    out.texture = &*filtered_;
  } else {
    out.texture = &synthesizer_.texture();
  }
  out.filter_seconds = watch.seconds();

  current_ = next_.get();
  ++frame_;
  out.total_seconds = total.seconds();
  return out;
}

}  // namespace dcsn::core
