// Temporal synthesis cache: decides, frame by frame, which tiles of a tiled
// DncSynthesizer must be re-rendered and which can be served from the
// previous frame's pixels.
//
// The cache snapshots the last committed frame — its spot population, the
// engine's tile grid, a fingerprint of the data field, and the engine's
// frame serial. plan() diffs the new population against the snapshot
// (core::FrameDelta) and derives the dirty-tile set; the engine then skips
// generation, rasterization and readback for clean tiles and retains their
// region of the final texture untouched. Because rasterization is
// target-independent and accumulation lattice-exact, the retained pixels
// are bit-identical to a full resynthesis (the incremental fuzz suite
// asserts exactly that).
//
// Invalidation story — plan() falls back to a full frame whenever reuse
// could be unsound:
//   * explicit invalidate(): REQUIRED whenever field contents change in
//     place — steering updates, or a time-varying dataset reloaded into
//     the same object. The automatic fingerprint below samples a dense
//     fixed grid; it makes accidental aliasing very unlikely but still
//     cannot see every localized in-place write, so the contract puts
//     in-place mutation on the caller;
//   * field fingerprint: a different field object invalidates on identity,
//     and a field whose content fingerprint (field::fingerprint_field — a
//     full FNV-1a hash over the domain, the maximum magnitude and a
//     16x16 sample grid, the same fingerprint core::TileStore keys tiles
//     by) moved invalidates automatically. The fingerprint makes the check
//     contentful — a per-frame field allocation that recycles the previous
//     frame's address cannot slip through on its identity alone (the
//     aliasing regression in tests/test_incremental.cpp pins a localized
//     edit the old 8-point probes missed) — but it is still sampled, which
//     is why in-place steering mutation additionally requires the explicit
//     invalidate();
//   * engine serial mismatch: every synthesize() bumps a serial; if the
//     engine rendered any frame the cache did not commit (another caller,
//     or a failed frame), the final texture's retained regions can no
//     longer be trusted;
//   * tile-grid reshape: a tile layout differing from the snapshot (e.g.
//     TileStrategy::kCostBalanced re-cutting after an invalidation, or a
//     config change) invalidates. During a valid incremental run the
//     engine deliberately keeps the grid frozen — see
//     DncSynthesizer::synthesize — so kCostBalanced re-balances only on
//     full frames.
//   * non-tiled engines: contiguous mode has no per-tile buffers to
//     retain; plan() always answers "full".
//
// kCostBalanced engines additionally get a rebalance budget: because
// planned frames freeze the tile grid, a drifting population would leave
// the frame-1 kd-cut arbitrarily imbalanced forever. After
// `rebalance_interval` consecutive planned frames the cache answers "full"
// once, letting the engine re-cut (the following commit snapshots the new
// grid and incremental planning resumes). Grid-strategy engines skip this
// — their layout is static, so a forced full frame would buy nothing.
#pragma once

#include <span>
#include <vector>

#include "core/dnc_synthesizer.hpp"
#include "core/frame_delta.hpp"
#include "field/fingerprint.hpp"

namespace dcsn::core {

class SynthesisCache {
 public:
  struct Decision {
    /// False: render a full frame (pass no plan to the engine).
    bool incremental = false;
    FramePlan plan;    ///< valid when incremental
    FrameDelta delta;  ///< diff vs the committed snapshot (incremental only)
  };

  /// Classifies the coming frame. `spots` is the snapshot the caller will
  /// pass to synthesize(); the cache does not retain the span.
  [[nodiscard]] Decision plan(const DncSynthesizer& engine,
                              const field::VectorField& f,
                              std::span<const SpotInstance> spots);

  /// Records a successfully synthesized frame. Call only after
  /// synthesize() returned (an exception means the frame was abandoned and
  /// must not be committed — the serial guard would catch the mistake, but
  /// don't make it).
  void commit(const DncSynthesizer& engine, const field::VectorField& f,
              std::vector<SpotInstance> spots);

  /// Drops the snapshot; the next frame renders fully. For steering
  /// applications that mutate the field in place.
  void invalidate() { valid_ = false; }

  [[nodiscard]] bool valid() const { return valid_; }

  /// Consecutive planned frames a TileStrategy::kCostBalanced engine may
  /// run before one full frame is forced so the kd-cut can re-balance;
  /// <= 0 disables the refresh. Ignored for kGrid.
  int rebalance_interval = 64;

 private:
  bool valid_ = false;
  std::vector<SpotInstance> spots_;  ///< last committed population
  std::vector<Tile> tiles_;          ///< tile grid it was rendered with
  const field::VectorField* field_ = nullptr;
  /// Content fingerprint of the committed field (domain + extremes + grid
  /// samples; see field/fingerprint.hpp). plan() rejects non-finite
  /// fingerprints outright, so a NaN-poisoned field conservatively renders
  /// full frames — the same behavior the old NaN-never-equal probes had.
  field::FieldFingerprint fingerprint_{};
  std::int64_t engine_serial_ = -1;
  int planned_streak_ = 0;  ///< consecutive incremental plans since a full frame
};

}  // namespace dcsn::core
