#include "core/frame_delta.hpp"

#include <algorithm>

namespace dcsn::core {

namespace {

// Exact equality on purpose: "unchanged" must guarantee identical geometry
// down to the last bit, and NaN != NaN conservatively classifies as moved.
inline bool same_spot(const SpotInstance& a, const SpotInstance& b) {
  return a.position.x == b.position.x && a.position.y == b.position.y &&
         a.intensity == b.intensity;
}

// Marks every tile the extent square around the mapped position overlaps —
// the assign_spots_to_tiles predicate verbatim (half-open pixel rects, NaN
// overlaps everything).
void mark_extent(const SpotInstance& spot, const render::WorldToImage& mapping,
                 double extent_px, std::span<const Tile> tiles,
                 std::vector<std::uint8_t>& dirty) {
  const auto [px, py] = mapping.map(spot.position);
  const double lo_x = px - extent_px;
  const double hi_x = px + extent_px;
  const double lo_y = py - extent_px;
  const double hi_y = py + extent_px;
  for (std::size_t t = 0; t < tiles.size(); ++t) {
    const Tile& tile = tiles[t];
    if (hi_x < tile.x0 || lo_x >= tile.x0 + tile.width) continue;
    if (hi_y < tile.y0 || lo_y >= tile.y0 + tile.height) continue;
    dirty[t] = 1;
  }
}

}  // namespace

FrameDelta diff_spots(std::span<const SpotInstance> prev,
                      std::span<const SpotInstance> cur) {
  FrameDelta delta;
  const std::size_t shared = std::min(prev.size(), cur.size());
  for (std::size_t k = 0; k < shared; ++k) {
    if (same_spot(prev[k], cur[k])) {
      ++delta.unchanged;
    } else {
      ++delta.moved;
      delta.changed.push_back(static_cast<std::int64_t>(k));
    }
  }
  delta.born = static_cast<std::int64_t>(cur.size()) -
               static_cast<std::int64_t>(shared);
  delta.died = static_cast<std::int64_t>(prev.size()) -
               static_cast<std::int64_t>(shared);
  return delta;
}

std::vector<std::uint8_t> dirty_tiles(const FrameDelta& delta,
                                      std::span<const SpotInstance> prev,
                                      std::span<const SpotInstance> cur,
                                      const render::WorldToImage& mapping,
                                      double extent_px,
                                      std::span<const Tile> tiles) {
  std::vector<std::uint8_t> dirty(tiles.size(), 0);
  // Moved spots invalidate where they were *and* where they are now.
  for (const std::int64_t k : delta.changed) {
    const auto i = static_cast<std::size_t>(k);
    mark_extent(prev[i], mapping, extent_px, tiles, dirty);
    mark_extent(cur[i], mapping, extent_px, tiles, dirty);
  }
  const std::size_t shared = std::min(prev.size(), cur.size());
  for (std::size_t k = shared; k < cur.size(); ++k) {  // born
    mark_extent(cur[k], mapping, extent_px, tiles, dirty);
  }
  for (std::size_t k = shared; k < prev.size(); ++k) {  // died
    mark_extent(prev[k], mapping, extent_px, tiles, dirty);
  }
  return dirty;
}

}  // namespace dcsn::core
