#include "core/perf_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace dcsn::core {

PerfModel PerfModel::calibrate(const FrameStats& frame, int pipes_used) {
  DCSN_CHECK(frame.spots > 0, "cannot calibrate from an empty frame");
  DCSN_CHECK(pipes_used >= 1, "pipes_used must be >= 1");
  PerfModelParams p;
  const auto spots = static_cast<double>(frame.spots);
  // genP_seconds is summed over workers, genT over pipes, so both are
  // totals across the whole spot set already.
  p.genP_per_spot = frame.genP_seconds / spots;
  p.genT_per_spot = frame.genT_seconds / spots;
  p.gather_per_pipe = frame.gather_seconds / pipes_used;
  p.fixed_overhead = std::max(
      0.0, frame.frame_seconds - frame.gather_seconds -
               std::max(frame.genP_seconds, frame.genT_seconds / pipes_used));
  return PerfModel(p);
}

double PerfModel::predict_serial(std::int64_t spots) const {
  const auto n = static_cast<double>(spots);
  return std::max(n * params_.genP_per_spot, n * params_.genT_per_spot) +
         params_.gather_per_pipe + params_.fixed_overhead;
}

double PerfModel::predict(std::int64_t spots, int processors, int pipes) const {
  DCSN_CHECK(processors >= 1 && pipes >= 1, "configuration must be positive");
  const auto n = static_cast<double>(spots);
  const double cpu = n * params_.genP_per_spot / processors;
  const double gfx = n * params_.genT_per_spot / pipes;
  const double c = params_.gather_per_pipe * pipes + params_.fixed_overhead;
  return std::max(cpu, gfx) + c;
}

double PerfModel::predict_incremental(std::int64_t spots_rendered, int processors,
                                      int pipes, int tiles_reused) const {
  DCSN_CHECK(processors >= 1 && pipes >= 1, "configuration must be positive");
  DCSN_CHECK(tiles_reused >= 0 && tiles_reused <= pipes,
             "cannot reuse more tiles than there are pipes");
  const int dirty = pipes - tiles_reused;
  if (dirty == 0 || spots_rendered <= 0) return params_.fixed_overhead;
  const auto n = static_cast<double>(spots_rendered);
  const double cpu = n * params_.genP_per_spot / processors;
  const double gfx = n * params_.genT_per_spot / dirty;
  const double c = params_.gather_per_pipe * dirty + params_.fixed_overhead;
  return std::max(cpu, gfx) + c;
}

double PerfModel::processors_per_pipe_balance() const {
  if (params_.genT_per_spot <= 0.0) return 1.0;
  return params_.genP_per_spot / params_.genT_per_spot;
}

AllocationChoice best_allocation(const PerfModel& model, std::int64_t spots,
                                 int max_processors, int max_pipes) {
  DCSN_CHECK(max_processors >= 1 && max_pipes >= 1, "machine limits must be positive");
  AllocationChoice best;
  best.predicted_seconds = model.predict(spots, 1, 1);
  for (int g = 1; g <= max_pipes; ++g) {
    for (int p = g; p <= max_processors; ++p) {  // every pipe needs a master
      const double t = model.predict(spots, p, g);
      if (t < best.predicted_seconds) {
        best = {p, g, t};
      }
    }
  }
  return best;
}

}  // namespace dcsn::core
