#include "core/spot_source.hpp"

namespace dcsn::core {

std::vector<SpotInstance> make_random_spots(field::Rect domain, std::int64_t count,
                                            util::Rng& rng) {
  std::vector<SpotInstance> spots;
  spots.reserve(static_cast<std::size_t>(count));
  for (std::int64_t k = 0; k < count; ++k) {
    SpotInstance s;
    s.position = {rng.uniform(domain.x0, domain.x1), rng.uniform(domain.y0, domain.y1)};
    s.intensity = rng.intensity();
    spots.push_back(s);
  }
  return spots;
}

std::vector<SpotInstance> spots_from_particles(
    const particles::ParticleSystem& system) {
  std::vector<SpotInstance> spots;
  spots.reserve(system.particles().size());
  for (const particles::Particle& p : system.particles()) {
    spots.push_back({p.position, p.intensity * system.fade_weight(p)});
  }
  return spots;
}

}  // namespace dcsn::core
