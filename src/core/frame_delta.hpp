// Frame-to-frame spot diffing and dirty-tile derivation (temporal
// coherence).
//
// An animated spot population barely changes between frames: particles in
// slow regions of the flow do not move (advection adds an exact zero), and
// a particle in the plateau of its life cycle keeps its intensity bit for
// bit. FrameDelta classifies each spot index against the previous frame —
// unchanged / moved / born / died — and dirty_tiles() projects the changed
// spots' conservative pixel extents onto a tile grid, using the same
// overlap predicate as assign_spots_to_tiles. A tile none of whose spots
// changed keeps an assignment list identical to last frame's, and because
// rasterization is target-independent and accumulation is lattice-exact
// (render/rasterizer.hpp), its cached pixels are *bit-identical* to what a
// full resynthesis would produce — that is the invariant the incremental
// fuzz suite asserts.
//
// Diffing is positional: spot k this frame is compared with spot k last
// frame, which matches how particles::ParticleSystem evolves (respawn
// happens in place, so indices are stable). A population whose count grew
// treats the tail as born; one that shrank treats the missing tail as died.
// Comparison is plain double equality, so a NaN position always classifies
// as moved — conservative, never unsound.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/spot_source.hpp"
#include "core/tiling.hpp"
#include "render/overlay.hpp"

namespace dcsn::core {

/// What the engine consumes for an incremental frame: one flag per tile,
/// nonzero = the tile's spot set changed and it must be re-rendered.
struct FramePlan {
  std::vector<std::uint8_t> tile_dirty;

  [[nodiscard]] std::int64_t dirty_count() const {
    std::int64_t n = 0;
    for (const std::uint8_t d : tile_dirty) n += d != 0;
    return n;
  }
};

struct FrameDelta {
  /// Indices in [0, min(prev, cur)) whose position or intensity changed.
  std::vector<std::int64_t> changed;
  std::int64_t unchanged = 0;
  std::int64_t moved = 0;  ///< changed in place (position and/or intensity)
  std::int64_t born = 0;   ///< tail indices that exist only in `cur`
  std::int64_t died = 0;   ///< tail indices that exist only in `prev`
};

/// Positional diff of two spot snapshots.
[[nodiscard]] FrameDelta diff_spots(std::span<const SpotInstance> prev,
                                    std::span<const SpotInstance> cur);

/// One flag per tile: set when any changed spot's extent (old or new
/// position, half-width `extent_px`) overlaps the tile, plus every tile a
/// born spot enters or a dying spot leaves. Uses the same half-open overlap
/// predicate as assign_spots_to_tiles, so "clean" provably means "identical
/// assignment list".
[[nodiscard]] std::vector<std::uint8_t> dirty_tiles(
    const FrameDelta& delta, std::span<const SpotInstance> prev,
    std::span<const SpotInstance> cur, const render::WorldToImage& mapping,
    double extent_px, std::span<const Tile> tiles);

}  // namespace dcsn::core
