// Spot transformation: from a spot instance to transformed mesh geometry.
//
// This is the genP work of the paper's eq. 2.1 — performed in software on
// the processors (paper §4: doing it on the pipe would cost a state-machine
// sync per spot). For each spot the generator samples the field, derives the
// spot's shape, and appends a ready-to-rasterize mesh in texture-pixel
// coordinates to a CommandBuffer:
//
//   * kPoint   — axis-aligned square (1 quad) around the position;
//   * kEllipse — square stretched along the local velocity, area-preserving;
//   * kBent    — ribbon mesh swept along a streamline traced through the
//                position, mesh_cols vertices long, mesh_rows wide.
#pragma once

#include "core/spot_params.hpp"
#include "core/spot_source.hpp"
#include "field/vector_field.hpp"
#include "particles/tracer.hpp"
#include "render/command_buffer.hpp"
#include "render/overlay.hpp"

namespace dcsn::core {

class SpotGeometryGenerator {
 public:
  /// `field` and the returned generator must outlive generate() calls.
  SpotGeometryGenerator(const SynthesisConfig& config, const field::VectorField& f);

  /// Appends one spot's mesh to `out`. Thread-safe: const and allocation-free
  /// apart from growing `out`.
  void generate(const SpotInstance& spot, render::CommandBuffer& out) const;

  /// Conservative half-extent (in pixels) of any spot this generator emits;
  /// the tiling preprocessor uses it to find every tile a spot may touch.
  [[nodiscard]] double max_extent_px() const;

  [[nodiscard]] const render::WorldToImage& mapping() const { return mapping_; }
  [[nodiscard]] const SynthesisConfig& config() const { return config_; }

 private:
  void generate_point(const SpotInstance& spot, render::CommandBuffer& out) const;
  void generate_ellipse(const SpotInstance& spot, render::CommandBuffer& out) const;
  void generate_bent(const SpotInstance& spot, render::CommandBuffer& out) const;

  /// Maps a world direction through the linear part of the world->pixel map.
  [[nodiscard]] field::Vec2 map_direction(field::Vec2 d) const;

  SynthesisConfig config_;
  const field::VectorField* field_;
  render::WorldToImage mapping_;
  particles::StreamlineTracer tracer_;
  double world_per_px_;   ///< average world units per texture pixel
  double inv_max_mag_;    ///< 1 / field max magnitude (0 for a zero field)
};

}  // namespace dcsn::core
