#include "core/runtime.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"
#include "util/threading.hpp"

namespace dcsn::core {

PipeLease& PipeLease::operator=(PipeLease&& other) noexcept {
  if (this != &other) {
    if (runtime_ && pipe_) runtime_->release_pipe(std::move(pipe_));
    runtime_ = other.runtime_;
    pipe_ = std::move(other.pipe_);
    other.runtime_ = nullptr;
  }
  return *this;
}

PipeLease::~PipeLease() {
  if (runtime_ && pipe_) runtime_->release_pipe(std::move(pipe_));
}

Runtime::Runtime(RuntimeConfig config)
    : config_(config),
      framebuffers_(config.max_idle_framebuffers),
      tile_store_(TileStore::Config{.max_bytes = config.tile_cache_bytes,
                                    .shards = config.tile_cache_shards,
                                    .recycle = &framebuffers_}) {
  if (config_.workers > 0) ensure_workers(config_.workers);
}

Runtime::~Runtime() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
    ++epoch_;
  }
  cv_.notify_all();
  workers_.clear();  // joins the pool (jthread)
  // idle_pipes_ tears down after: each pipe joins its server thread.
}

Runtime& Runtime::global() {
  static Runtime runtime;
  return runtime;
}

void Runtime::ensure_workers(int count) {
  util::MutexLock lock(mutex_);
  while (static_cast<int>(workers_.size()) < count) {
    const int id = static_cast<int>(workers_.size());
    workers_.emplace_back([this, id] { worker_loop(id); });
  }
}

int Runtime::worker_count() const {
  util::MutexLock lock(mutex_);
  return static_cast<int>(workers_.size());
}

void Runtime::register_job(std::shared_ptr<SharedJob> job) {
  {
    util::MutexLock lock(mutex_);
    jobs_.push_back(std::move(job));
    job_count_.store(static_cast<int>(jobs_.size()), std::memory_order_relaxed);
    ++epoch_;
  }
  cv_.notify_all();
}

void Runtime::deregister_job(const SharedJob* job) {
  util::MutexLock lock(mutex_);
  std::erase_if(jobs_, [job](const auto& j) { return j.get() == job; });
  job_count_.store(static_cast<int>(jobs_.size()), std::memory_order_relaxed);
}

void Runtime::notify_workers() {
  {
    util::MutexLock lock(mutex_);
    ++epoch_;
  }
  cv_.notify_all();
}

void Runtime::post(std::function<void()> fn) {
  {
    util::MutexLock lock(mutex_);
    tasks_.push_back(std::move(fn));
    ++epoch_;
  }
  cv_.notify_all();
}

void Runtime::worker_loop(int worker_id) {
  util::set_current_thread_name("dcsn-rt" + std::to_string(worker_id));
  for (;;) {
    std::function<void()> task;
    std::vector<std::shared_ptr<SharedJob>> jobs;
    std::uint64_t epoch;
    {
      util::MutexLock lock(mutex_);
      epoch = epoch_;
      if (stop_) return;
      if (!tasks_.empty()) {
        // FIFO; tasks beat job service so short pipeline steps (prepare,
        // partial reductions) are not starved behind a frame in flight.
        task = std::move(tasks_.front());
        tasks_.erase(tasks_.begin());
      } else {
        jobs = jobs_;  // snapshot: serve outside the lock
      }
    }
    if (task) {
      task();
      continue;
    }
    // Fault site kWorkerPickup (scheduling class): a drop models a worker
    // offering no capacity this round — it falls through to the epoch wait
    // below, so the frame's calling thread (which always participates) keeps
    // the frame live and nothing can hang; a delay models preemption before
    // pickup. Never a throw: an exception here would kill the pool thread.
    if (FaultInjector* faults = config_.fault_injector.get()) {
      if (faults->check_scheduling(FaultSite::kWorkerPickup) ==
          FaultInjector::Action::kDrop) {
        jobs.clear();
      }
    }
    bool worked = false;
    for (const auto& job : jobs) worked = job->serve() || worked;
    if (worked) continue;
    util::MutexLock lock(mutex_);
    cv_.wait(lock, [&]() DCSN_REQUIRES(mutex_) {
      return stop_ || epoch_ != epoch || !tasks_.empty();
    });
  }
}

PipeLease Runtime::acquire_pipe(const render::PipeConfig& config,
                                std::shared_ptr<render::Bus> bus, int pipe_id) {
  std::unique_ptr<render::GraphicsPipe> pipe;
  {
    util::MutexLock lock(pipes_mutex_);
    auto it = idle_pipes_.find(key_of(config));
    if (it != idle_pipes_.end() && !it->second.empty()) {
      pipe = std::move(it->second.back());
      it->second.pop_back();
      ++pipes_reused_;
    } else {
      ++pipes_created_;
    }
  }
  if (pipe) {
    // Reuse path: rebind the borrowing session's bus and reshape the target
    // instead of paying a fresh server thread + allocation. The session
    // performs its own profile/blend/viewport setup next, exactly as it
    // would on a new pipe.
    pipe->set_bus(std::move(bus));
    if (pipe->config().width != config.width ||
        pipe->config().height != config.height) {
      pipe->resize_target(config.width, config.height);
    }
  } else {
    pipe = std::make_unique<render::GraphicsPipe>(config, std::move(bus), pipe_id);
  }
  return {this, std::move(pipe)};
}

void Runtime::release_pipe(std::unique_ptr<render::GraphicsPipe> pipe) {
  // Scrub session state so a pooled pipe holds no references into the
  // session that returned it: profile freed, viewport back at the origin,
  // bus model dropped. finish() drains these before the pipe goes idle.
  pipe->bind_profile(nullptr);
  pipe->set_viewport_origin(0, 0);
  pipe->finish();
  pipe->set_bus(nullptr);
  pipe->reset_stats();
  util::MutexLock lock(pipes_mutex_);
  auto& idle = idle_pipes_[key_of(pipe->config())];
  if (idle.size() < config_.max_idle_pipes) idle.push_back(std::move(pipe));
  // else: destroyed here, joining its server thread.
}

std::int64_t Runtime::pipes_created() const {
  util::MutexLock lock(pipes_mutex_);
  return pipes_created_;
}

std::int64_t Runtime::pipes_reused() const {
  util::MutexLock lock(pipes_mutex_);
  return pipes_reused_;
}

}  // namespace dcsn::core
