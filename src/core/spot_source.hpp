// Spot instances: where spots sit and how strongly they contribute.
//
// A static texture draws positions i.i.d. uniform (the x_i of the spot-noise
// definition); an animated texture takes them from a ParticleSystem, with the
// life-cycle fade folded into the intensity. Figure 2's "advected spot
// positions" variant advects the population for a while before synthesis so
// density accumulates along flow structures.
#pragma once

#include <span>
#include <vector>

#include "field/vec2.hpp"
#include "particles/particle_system.hpp"
#include "util/rng.hpp"

namespace dcsn::core {

struct SpotInstance {
  field::Vec2 position;     ///< world coordinates
  double intensity = 0.0;   ///< zero-mean weight a_i (fade already applied)
};

/// `count` spots with uniform positions and uniform [-1,1] intensities.
[[nodiscard]] std::vector<SpotInstance> make_random_spots(field::Rect domain,
                                                          std::int64_t count,
                                                          util::Rng& rng);

/// One spot per particle; intensity = particle intensity * fade weight.
[[nodiscard]] std::vector<SpotInstance> spots_from_particles(
    const particles::ParticleSystem& system);

}  // namespace dcsn::core
