#include "core/synthesis_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <utility>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/threading.hpp"

namespace dcsn::core {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

SynthesisService::SynthesisService(ServiceConfig config, Runtime& runtime)
    : runtime_(&runtime), config_(config) {
  DCSN_CHECK(config_.drivers >= 1, "the service needs at least one driver");
  DCSN_CHECK(config_.breaker_failure_threshold >= 1,
             "the breaker needs a positive failure threshold");
  drivers_.reserve(static_cast<std::size_t>(config_.drivers));
  for (int d = 0; d < config_.drivers; ++d) {
    drivers_.emplace_back([this] { driver_loop(); });
  }
  if (config_.watchdog_interval_seconds > 0.0) {
    watchdog_ = std::jthread([this] { watchdog_loop(); });
  }
}

SynthesisService::~SynthesisService() { shutdown(/*drain=*/true); }

SynthesisService::SessionId SynthesisService::open_session(
    const SynthesisConfig& synthesis, const DncConfig& dnc, int priority) {
  // Engine construction outside the lock: it touches the runtime (pipe
  // checkout, pool growth) and may take a moment.
  auto session = std::make_unique<Session>();
  session->priority = priority;
  session->engine = std::make_unique<DncSynthesizer>(synthesis, dnc, *runtime_);
  util::MutexLock lock(mutex_);
  DCSN_CHECK(accepting_, "the service is shutting down");
  session->id = next_session_id_++;
  const SessionId id = session->id;
  sessions_.emplace(id, std::move(session));
  return id;
}

void SynthesisService::close_session(SessionId id) {
  std::unique_ptr<Session> dead;
  {
    util::MutexLock lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    Session& session = *it->second;
    session.closed = true;
    cancel_pending(session);
    if (!session.running) {
      dead = std::move(it->second);
      sessions_.erase(it);
    }
    // else: the driver finishing the running job reaps the session.
  }
  cv_.notify_all();
  // `dead` (and its engine) tears down outside the lock.
}

SynthesisService::JobTicket SynthesisService::submit(SessionId id,
                                                     SynthesisRequest request,
                                                     SubmitOptions options) {
  DCSN_CHECK(request.field != nullptr, "a synthesis request needs a field");
  DCSN_CHECK(options.max_retries >= 0, "max_retries must be non-negative");
  DCSN_CHECK(options.deadline_seconds > 0.0, "the deadline must be positive");
  JobTicket ticket;
  {
    util::MutexLock lock(mutex_);
    DCSN_CHECK(accepting_, "the service is shutting down");
    auto it = sessions_.find(id);
    DCSN_CHECK(it != sessions_.end() && !it->second->closed,
               "unknown or closed session");
    Session& session = *it->second;
    const double now = clock_now();
    if (session.breaker == BreakerState::kOpen) {
      if (now < session.breaker_open_until) {
        ++totals_.quarantined;
        throw SessionQuarantined();
      }
      // Cooldown elapsed: admit work again, the next dispatch is the probe.
      session.breaker = BreakerState::kHalfOpen;
    }
    if (options.policy == SubmitOptions::DeadlinePolicy::kReject &&
        std::isfinite(options.deadline_seconds) && config_.admission_control &&
        session.model_valid) {
      // Admission control: with `depth` frames ahead of it on this engine,
      // the new job finishes after ~(depth + 1) predicted frame times. If
      // that already blows the deadline, failing fast at the door is
      // strictly better than a guaranteed timeout after a dispatch.
      const DncConfig& dnc = session.engine->dnc_config();
      const double predicted = session.model.predict(
          static_cast<std::int64_t>(request.spots.size()), dnc.processors,
          dnc.pipes);
      const double depth = static_cast<double>(session.queue.size()) +
                           (session.running ? 1.0 : 0.0);
      if ((depth + 1.0) * predicted > options.deadline_seconds) {
        ++totals_.rejected;
        throw JobRejected();
      }
    }
    auto job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->session = id;
    job->session_ordinal = session.submitted++;
    job->request = std::move(request);
    job->options = options;
    job->enqueued_at_serve = serve_clock_;
    if (std::isfinite(options.deadline_seconds)) {
      job->deadline_at = now + options.deadline_seconds;
    }
    ticket.id = job->id;
    ticket.session = id;
    ticket.result = job->promise.get_future();
    jobs_.emplace(job->id, job);
    session.queue.push_back(std::move(job));
    // A tight-deadline submit into a saturated service may need a running
    // frame out of the way before the queue position helps it.
    maybe_preempt(now);
  }
  cv_.notify_all();
  return ticket;
}

bool SynthesisService::cancel(JobId id) {
  util::MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;  // unknown or already completed
  Job& job = *it->second;
  job.control.cancel.store(true, std::memory_order_relaxed);
  if (job.state == JobState::kPending) {
    auto session_it = sessions_.find(job.session);
    if (session_it != sessions_.end()) {
      std::erase_if(session_it->second->queue,
                    [id](const auto& j) { return j->id == id; });
      ++session_it->second->canceled;
    }
    ++totals_.canceled;
    job.promise.set_exception(std::make_exception_ptr(JobCanceled()));
    job.state = JobState::kDone;
    jobs_.erase(it);
  }
  // kRunning: the engine's frame control aborts the frame at the next chunk
  // boundary; the driver resolves the future with JobCanceled.
  return true;
}

void SynthesisService::shutdown(bool drain) {
  {
    util::MutexLock lock(mutex_);
    accepting_ = false;
    if (shutdown_) return;  // idempotent: a second call changes nothing
    shutdown_ = true;
    drain_ = drain;
    if (!drain) {
      for (auto& [id, session] : sessions_) cancel_pending(*session);
      // Frames in flight are canceled cooperatively; their drivers resolve
      // the tickets.
      for (auto& [jid, job] : jobs_) {
        if (job->state == JobState::kRunning) {
          job->control.cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  cv_.notify_all();
  drivers_.clear();  // joins
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

int SynthesisService::pending_jobs() const {
  util::MutexLock lock(mutex_);
  int n = 0;
  for (const auto& [id, session] : sessions_) {
    n += static_cast<int>(session->queue.size());
  }
  return n;
}

ServiceHealth SynthesisService::health() const {
  util::MutexLock lock(mutex_);
  ServiceHealth health = totals_;
  health.clock_now = clock_now();
  health.sessions.clear();
  for (const auto& [id, session] : sessions_) {
    const Session& s = *session;
    SessionHealth row;
    row.id = s.id;
    row.priority = s.priority;
    row.breaker = s.breaker;
    row.consecutive_failures = s.consecutive_failures;
    row.breaker_trips = s.breaker_trips;
    row.completed = s.completed;
    row.degraded = s.degraded;
    row.failed = s.failed;
    row.retries = s.retries;
    row.timeouts = s.timeouts;
    row.canceled = s.canceled;
    row.yielded = s.yielded;
    row.pending = static_cast<int>(s.queue.size());
    row.running = s.running;
    health.sessions.push_back(row);
  }
  return health;
}

void SynthesisService::cancel_pending(Session& session) {
  for (auto& job : session.queue) {
    job->promise.set_exception(std::make_exception_ptr(JobCanceled()));
    job->state = JobState::kDone;
    jobs_.erase(job->id);
    ++session.canceled;
    ++totals_.canceled;
  }
  session.queue.clear();
}

bool SynthesisService::any_running() const {
  return std::any_of(sessions_.begin(), sessions_.end(),
                     [](const auto& s) { return s.second->running; });
}

int SynthesisService::effective_priority(const Session& session) const {
  if (session.queue.empty()) return session.priority;
  if (config_.priority_aging_dispatches <= 0) return session.priority;
  // Age on the dispatch clock, not wall time: every job the service
  // dispatched while this head waited is one tick of starvation evidence,
  // and the count replays identically in wall and virtual-clock modes.
  const std::int64_t waited =
      serve_clock_ - session.queue.front()->enqueued_at_serve;
  return session.priority +
         static_cast<int>(waited / config_.priority_aging_dispatches);
}

SynthesisService::Session* SynthesisService::pick_session(double now,
                                                          double* wake_at) {
  Session* best = nullptr;
  int best_effective = 0;
  for (auto& [id, entry] : sessions_) {
    Session& session = *entry;
    if (session.running || session.queue.empty()) continue;
    if (session.breaker == BreakerState::kOpen) {
      if (now < session.breaker_open_until) {
        *wake_at = std::min(*wake_at, session.breaker_open_until);
        continue;
      }
      // Cooldown elapsed: let exactly one probe through (the session runs
      // at most one job at a time, so the next dispatch *is* the probe).
      session.breaker = BreakerState::kHalfOpen;
    }
    const Job& head = *session.queue.front();
    if (head.not_before > now) {
      *wake_at = std::min(*wake_at, head.not_before);  // backoff wait
      continue;
    }
    const int effective = effective_priority(session);
    if (best == nullptr || effective > best_effective ||
        (effective == best_effective &&
         session.last_served < best->last_served)) {
      best = &session;
      best_effective = effective;
    }
  }
  return best;
}

void SynthesisService::maybe_preempt(double now) {
  if (config_.yield_risk_factor <= 0.0) return;
  // Risk is judged by the session PerfModel — measured calibration, which
  // is exactly what replay harnesses switch off via admission_control.
  if (!config_.admission_control) return;
  int running = 0;
  for (const auto& [id, session] : sessions_) running += session->running;
  if (running < config_.drivers) return;  // a free driver dispatches normally
  // The most urgent pending head whose deadline is at risk.
  const Session* urgent = nullptr;
  double urgent_slack = std::numeric_limits<double>::infinity();
  for (const auto& [id, entry] : sessions_) {
    const Session& session = *entry;
    if (session.running || session.closed || session.queue.empty()) continue;
    if (session.breaker == BreakerState::kOpen &&
        now < session.breaker_open_until) {
      continue;
    }
    const Job& head = *session.queue.front();
    if (head.not_before > now || !std::isfinite(head.deadline_at)) continue;
    if (!session.model_valid) continue;
    const DncConfig& dnc = session.engine->dnc_config();
    const double predicted = session.model.predict(
        static_cast<std::int64_t>(head.request.spots.size()), dnc.processors,
        dnc.pipes);
    const double slack = head.deadline_at - now;
    if (slack > predicted * config_.yield_risk_factor) continue;  // on track
    if (urgent == nullptr || slack < urgent_slack) {
      urgent = &session;
      urgent_slack = slack;
    }
  }
  if (urgent == nullptr) return;
  // Victim: the running job with the most deadline slack. Never a session
  // of higher configured priority, never a job with less slack than the
  // job we would rescue (that only trades one miss for another), and never
  // a job already past its yield allowance.
  Job* victim = nullptr;
  double victim_slack = -std::numeric_limits<double>::infinity();
  for (const auto& [jid, job] : jobs_) {
    if (job->state != JobState::kRunning) continue;
    if (job->yields >= config_.max_job_yields) continue;
    if (job->control.yield.load(std::memory_order_relaxed)) continue;
    const auto session_it = sessions_.find(job->session);
    if (session_it == sessions_.end()) continue;
    if (session_it->second->priority > urgent->priority) continue;
    const double slack = std::isfinite(job->deadline_at)
                             ? job->deadline_at - now
                             : std::numeric_limits<double>::infinity();
    if (slack <= urgent_slack) continue;
    if (victim == nullptr || slack > victim_slack) {
      victim = job.get();
      victim_slack = slack;
    }
  }
  if (victim == nullptr) return;
  victim->yields += 1;
  victim->control.yield.store(true, std::memory_order_relaxed);
}

SynthesisService::DispatchMode SynthesisService::triage(const Session& session,
                                                        const Job& job,
                                                        double now) const {
  const SubmitOptions& opt = job.options;
  if (!std::isfinite(opt.deadline_seconds)) return DispatchMode::kRun;
  const bool degradable =
      opt.policy == SubmitOptions::DeadlinePolicy::kDegrade &&
      session.completed > 0;
  if (now >= job.deadline_at) {
    // Already expired in the queue: synthesizing would only waste the
    // engine on a result nobody can use in time.
    return degradable ? DispatchMode::kDegrade : DispatchMode::kTimeout;
  }
  if (degradable && config_.admission_control && session.model_valid) {
    const DncConfig& dnc = session.engine->dnc_config();
    const double predicted = session.model.predict(
        static_cast<std::int64_t>(job.request.spots.size()), dnc.processors,
        dnc.pipes);
    if (now + predicted > job.deadline_at) return DispatchMode::kDegrade;
  }
  return DispatchMode::kRun;
}

void SynthesisService::driver_loop() {
  util::set_current_thread_name("dcsn-svc");
  util::MutexLock lock(mutex_);
  for (;;) {
    const double now = clock_now();
    double wake_at = std::numeric_limits<double>::infinity();
    Session* session = pick_session(now, &wake_at);
    if (session == nullptr) {
      const bool backlog =
          std::any_of(sessions_.begin(), sessions_.end(),
                      [](const auto& s) { return !s.second->queue.empty(); });
      if (shutdown_ && (!drain_ || !backlog)) return;
      if (backlog && std::isfinite(wake_at)) {
        // Every runnable head is parked until a future instant (retry
        // backoff or breaker cooldown). A drain shutdown still owes those
        // jobs a dispatch, so waiting here — not just on shutdown_ — is
        // what makes drain-with-backoff terminate.
        if (config_.virtual_clock != nullptr) {
          if (any_running()) {
            // A running frame may finish first and change the picture;
            // its driver's notify wakes us. Never advance a virtual clock
            // under live work: replay depends on advances happening only
            // at quiescence.
            cv_.wait(lock);
          } else {
            config_.virtual_clock->advance_to(wake_at);  // discrete-event hop
          }
        } else {
          cv_.wait_for(lock, std::chrono::duration<double>(
                                 std::max(wake_at - now, 1e-4)));
        }
        continue;
      }
      cv_.wait(lock);
      continue;
    }
    std::shared_ptr<Job> job = session->queue.front();
    session->queue.pop_front();
    session->running = true;
    session->last_served = ++serve_clock_;
    const std::int64_t seq = serve_clock_;
    job->state = JobState::kRunning;
    job->attempt += 1;
    const DispatchMode mode = triage(*session, *job, now);
    lock.unlock();
    RunResult result = run_job(*session, *job, seq, mode);
    lock.lock();
    const bool requeued = settle_job(*session, job, result);
    if (!requeued) jobs_.erase(job->id);
    session->running = false;
    std::unique_ptr<Session> dead;
    if (session->closed) {
      cancel_pending(*session);  // anything submitted before close raced in
      auto it = sessions_.find(session->id);
      if (it != sessions_.end()) {
        dead = std::move(it->second);
        sessions_.erase(it);
      }
    }
    if (dead) {
      lock.unlock();
      dead.reset();  // engine teardown outside the lock
      lock.lock();
    }
    cv_.notify_all();  // this session may have runnable work again
  }
}

SynthesisResult SynthesisService::degraded_result(Session& session, Job& job,
                                                  std::int64_t seq) const {
  // This driver owns the session (running == true) and the engine is idle,
  // so its texture is the last *completed* frame of this session: stale,
  // but a complete bit-exact frame — exactly what kDegrade promises.
  SynthesisResult result;
  result.stats.degraded = true;
  result.stats.queue_wait_seconds = job.queued.seconds();
  result.content_hash = session.engine->texture().content_hash();
  result.service_seq = seq;
  result.attempts = job.attempt;
  if (job.request.capture_texture) result.texture = session.engine->texture();
  return result;
}

SynthesisService::RunResult SynthesisService::run_job(Session& session,
                                                      Job& job,
                                                      std::int64_t seq,
                                                      DispatchMode mode) {
  RunResult out;
  if (mode == DispatchMode::kDegrade) {
    out.value = degraded_result(session, job, seq);
    out.outcome = Outcome::kDegraded;
    return out;
  }
  if (mode == DispatchMode::kTimeout) {
    out.error = std::make_exception_ptr(JobTimedOut());
    out.outcome = Outcome::kTimedOut;
    return out;
  }
  const double queue_wait = job.queued.seconds();
  DncSynthesizer& engine = *session.engine;
  const SubmitOptions& opt = job.options;
  // Arm the control block for this attempt. The fault key derives from
  // (session, per-session submit ordinal, attempt): stable identity, so a
  // replay with the same submission program hits the same injected faults
  // regardless of how drivers interleave across sessions.
  job.control.timed_out.store(false, std::memory_order_relaxed);
  job.control.yield.store(false, std::memory_order_relaxed);
  job.control.delay_penalty_ns.store(0, std::memory_order_relaxed);
  job.control.progress.store(0, std::memory_order_relaxed);
  job.control.deadline_penalty_ns =
      std::isfinite(opt.deadline_seconds)
          ? static_cast<std::int64_t>(opt.deadline_seconds * 1e9)
          : std::numeric_limits<std::int64_t>::max();
  std::uint64_t key = util::fnv1a(&job.session, sizeof(job.session));
  key = util::fnv1a(&job.session_ordinal, sizeof(job.session_ordinal), key);
  key = util::fnv1a(&job.attempt, sizeof(job.attempt), key);
  job.control.fault_key = key;
  engine.bind_frame_control(&job.control);
  try {
    const SynthesisRequest& req = job.request;
    FrameStats stats;
    if (req.incremental && engine.dnc_config().tiled) {
      const SynthesisCache::Decision d =
          session.cache.plan(engine, *req.field, req.spots);
      stats = engine.synthesize(*req.field, req.spots,
                                d.incremental ? &d.plan : nullptr);
      session.cache.commit(engine, *req.field, std::move(job.request.spots));
    } else {
      stats = engine.synthesize(*req.field, req.spots);
    }
    engine.bind_frame_control(nullptr);
    stats.queue_wait_seconds = queue_wait;
    SynthesisResult result;
    result.stats = stats;
    result.content_hash = engine.texture().content_hash();
    result.service_seq = seq;
    result.attempts = job.attempt;
    if (req.capture_texture) result.texture = engine.texture();
    out.model = PerfModel::calibrate(stats, engine.dnc_config().pipes);
    out.value = std::move(result);
    out.outcome = Outcome::kCompleted;
  } catch (const JobCanceled&) {
    engine.bind_frame_control(nullptr);
    out.error = std::current_exception();
    out.outcome = Outcome::kCanceled;
  } catch (const JobTimedOut&) {
    engine.bind_frame_control(nullptr);
    // session.completed is stable here: only the settling driver writes it,
    // and this driver is the one running the session.
    if (opt.policy == SubmitOptions::DeadlinePolicy::kDegrade &&
        session.completed > 0) {
      out.value = degraded_result(session, job, seq);
      out.outcome = Outcome::kDegraded;
    } else {
      out.error = std::current_exception();
      out.outcome = Outcome::kTimedOut;
    }
  } catch (const JobYielded&) {
    // Preempted for a deadline-at-risk job, not failed: the frame goes back
    // to the front of its session queue and reruns with the same attempt
    // number (settle_job rolls it back), so the fault key — and therefore
    // the injected fault schedule — is identical on the redo.
    engine.bind_frame_control(nullptr);
    out.outcome = Outcome::kYielded;
  } catch (...) {
    // Frame failures are session-local: the engine's failure protocol
    // already rearmed it, the cache's serial guard refuses the uncommitted
    // frame, and only this ticket observes the exception. Transient or not,
    // a retry budget lets the job try again (the breaker stops persistent
    // toxicity); the promise stays open until settle_job confirms the
    // retry or we exhaust the budget here.
    engine.bind_frame_control(nullptr);
    if (job.attempt <= opt.max_retries) {
      out.outcome = Outcome::kRetry;
    } else {
      out.error = std::current_exception();
      out.outcome = Outcome::kFailed;
    }
  }
  return out;
}

bool SynthesisService::settle_job(Session& session,
                                  const std::shared_ptr<Job>& job,
                                  RunResult& result) {
  switch (result.outcome) {
    case Outcome::kCompleted:
      ++session.completed;
      ++totals_.completed;
      session.consecutive_failures = 0;
      if (session.breaker == BreakerState::kHalfOpen) {
        session.breaker = BreakerState::kClosed;  // probe passed
      }
      if (result.model.has_value()) {
        session.model = *result.model;
        session.model_valid = true;
      }
      break;
    case Outcome::kDegraded:
      ++session.degraded;
      ++totals_.degraded;
      // A degraded serve neither proves nor indicts the engine: the
      // breaker and the failure streak are left untouched.
      break;
    case Outcome::kCanceled:
      ++session.canceled;
      ++totals_.canceled;
      break;
    case Outcome::kTimedOut:
      ++session.timeouts;
      ++totals_.timeouts;
      note_failure(session);
      break;
    case Outcome::kFailed:
      ++session.failed;
      ++totals_.failed;
      note_failure(session);
      break;
    case Outcome::kRetry: {
      if (!session.closed && !(shutdown_ && !drain_) &&
          !job->control.cancel.load(std::memory_order_relaxed)) {
        ++session.retries;
        ++totals_.retries;
        const SubmitOptions& opt = job->options;
        double backoff = opt.backoff_seconds;
        for (int a = 1; a < job->attempt; ++a) {
          backoff *= opt.backoff_multiplier;
        }
        backoff = std::min(backoff, opt.backoff_max_seconds);
        job->not_before = clock_now() + backoff;
        job->state = JobState::kPending;
        // Front of the queue: retries must not let a later frame of the
        // same session overtake (FIFO-within-session is the animation
        // contract).
        session.queue.push_front(job);
        return true;
      }
      // The retry lost its reason to exist while the attempt ran.
      result.value.reset();
      result.error = std::make_exception_ptr(JobCanceled());
      ++session.canceled;
      ++totals_.canceled;
      break;
    }
    case Outcome::kYielded: {
      if (!session.closed && !(shutdown_ && !drain_) &&
          !job->control.cancel.load(std::memory_order_relaxed)) {
        ++session.yielded;
        ++totals_.yielded;
        // Roll the attempt back: a yield must not spend retry budget or
        // perturb the (session, ordinal, attempt) fault key, or preemption
        // would change which faults a replayed program observes.
        job->attempt -= 1;
        job->not_before = 0.0;
        job->state = JobState::kPending;
        session.queue.push_front(job);  // FIFO-within-session is preserved
        return true;
      }
      result.value.reset();
      result.error = std::make_exception_ptr(JobCanceled());
      ++session.canceled;
      ++totals_.canceled;
      break;
    }
  }
  // The books are settled; only now may the client's future resolve. A
  // waiter that wakes from this set_value and immediately calls health()
  // blocks on mutex_ until this driver releases it — with the outcome
  // already counted.
  job->state = JobState::kDone;
  if (result.value.has_value()) {
    job->promise.set_value(std::move(*result.value));
  } else if (result.error != nullptr) {
    job->promise.set_exception(result.error);
  }
  return false;
}

void SynthesisService::note_failure(Session& session) {
  session.consecutive_failures += 1;
  const bool trip =
      session.breaker == BreakerState::kHalfOpen ||
      (session.breaker == BreakerState::kClosed &&
       session.consecutive_failures >= config_.breaker_failure_threshold);
  if (trip) {
    session.breaker = BreakerState::kOpen;
    session.breaker_open_until =
        clock_now() + config_.breaker_cooldown_seconds;
    ++session.breaker_trips;
    ++totals_.breaker_trips;
  }
}

void SynthesisService::watchdog_loop() {
  util::set_current_thread_name("dcsn-dog");
  util::MutexLock lock(mutex_);
  while (!shutdown_) {
    // Paced by its own condvar so driver notify_all bursts don't distort
    // the stall accounting below (ticks ≈ interval apart).
    watchdog_cv_.wait_for(
        lock,
        std::chrono::duration<double>(config_.watchdog_interval_seconds));
    if (shutdown_) break;
    const double now = clock_now();
    for (auto& [jid, job] : jobs_) {
      if (job->state != JobState::kRunning) continue;
      if (config_.virtual_clock == nullptr && now >= job->deadline_at) {
        // Wall-mode deadline enforcement. (Virtual mode charges injected
        // delays against the budget at the fault sites instead — the
        // watchdog never reads a virtual deadline, keeping replay exact.)
        job->control.timed_out.store(true, std::memory_order_relaxed);
        continue;
      }
      const std::int64_t progress =
          job->control.progress.load(std::memory_order_relaxed);
      if (progress != job->watch_progress) {
        job->watch_progress = progress;
        job->watch_stalls = 0;
      } else if (config_.watchdog_no_progress_seconds > 0.0 &&
                 static_cast<double>(++job->watch_stalls) *
                         config_.watchdog_interval_seconds >=
                     config_.watchdog_no_progress_seconds) {
        // No chunk progressed for the whole budget: the frame is wedged
        // (a stuck field callback, a hung pipe). Time it out so the
        // session recovers instead of holding a driver forever.
        job->control.timed_out.store(true, std::memory_order_relaxed);
      }
    }
    // Deadlines drift toward risk while frames run; the watchdog tick is
    // the periodic re-check that submit()-time preemption can't provide.
    maybe_preempt(now);
  }
}

}  // namespace dcsn::core
