#include "core/synthesis_service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "util/error.hpp"
#include "util/threading.hpp"

namespace dcsn::core {

SynthesisService::SynthesisService(ServiceConfig config, Runtime& runtime)
    : runtime_(&runtime), config_(config) {
  DCSN_CHECK(config_.drivers >= 1, "the service needs at least one driver");
  drivers_.reserve(static_cast<std::size_t>(config_.drivers));
  for (int d = 0; d < config_.drivers; ++d) {
    drivers_.emplace_back([this] { driver_loop(); });
  }
}

SynthesisService::~SynthesisService() { shutdown(/*drain=*/true); }

SynthesisService::SessionId SynthesisService::open_session(
    const SynthesisConfig& synthesis, const DncConfig& dnc, int priority) {
  // Engine construction outside the lock: it touches the runtime (pipe
  // checkout, pool growth) and may take a moment.
  auto session = std::make_unique<Session>();
  session->priority = priority;
  session->engine = std::make_unique<DncSynthesizer>(synthesis, dnc, *runtime_);
  util::MutexLock lock(mutex_);
  DCSN_CHECK(accepting_, "the service is shutting down");
  session->id = next_session_id_++;
  const SessionId id = session->id;
  sessions_.emplace(id, std::move(session));
  return id;
}

void SynthesisService::close_session(SessionId id) {
  std::unique_ptr<Session> dead;
  {
    util::MutexLock lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    Session& session = *it->second;
    session.closed = true;
    cancel_pending(session);
    if (!session.running) {
      dead = std::move(it->second);
      sessions_.erase(it);
    }
    // else: the driver finishing the running job reaps the session.
  }
  cv_.notify_all();
  // `dead` (and its engine) tears down outside the lock.
}

SynthesisService::JobTicket SynthesisService::submit(SessionId id,
                                                     SynthesisRequest request) {
  DCSN_CHECK(request.field != nullptr, "a synthesis request needs a field");
  JobTicket ticket;
  {
    util::MutexLock lock(mutex_);
    DCSN_CHECK(accepting_, "the service is shutting down");
    auto it = sessions_.find(id);
    DCSN_CHECK(it != sessions_.end() && !it->second->closed,
               "unknown or closed session");
    auto job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->session = id;
    job->request = std::move(request);
    ticket.id = job->id;
    ticket.session = id;
    ticket.result = job->promise.get_future();
    jobs_.emplace(job->id, job);
    it->second->queue.push_back(std::move(job));
  }
  cv_.notify_all();
  return ticket;
}

bool SynthesisService::cancel(JobId id) {
  util::MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;  // unknown or already completed
  Job& job = *it->second;
  job.cancel.store(true, std::memory_order_relaxed);
  if (job.state == JobState::kPending) {
    auto session_it = sessions_.find(job.session);
    if (session_it != sessions_.end()) {
      std::erase_if(session_it->second->queue,
                    [id](const auto& j) { return j->id == id; });
    }
    job.promise.set_exception(std::make_exception_ptr(JobCanceled()));
    job.state = JobState::kDone;
    jobs_.erase(it);
  }
  // kRunning: the engine's cancel token aborts the frame at the next chunk
  // boundary; the driver resolves the future with JobCanceled.
  return true;
}

void SynthesisService::shutdown(bool drain) {
  {
    util::MutexLock lock(mutex_);
    accepting_ = false;
    if (shutdown_) return;  // idempotent: a second call changes nothing
    shutdown_ = true;
    drain_ = drain;
    if (!drain) {
      for (auto& [id, session] : sessions_) cancel_pending(*session);
      // Frames in flight are canceled cooperatively; their drivers resolve
      // the tickets.
      for (auto& [jid, job] : jobs_) {
        if (job->state == JobState::kRunning) {
          job->cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
  }
  cv_.notify_all();
  drivers_.clear();  // joins
}

int SynthesisService::pending_jobs() const {
  util::MutexLock lock(mutex_);
  int n = 0;
  for (const auto& [id, session] : sessions_) {
    n += static_cast<int>(session->queue.size());
  }
  return n;
}

void SynthesisService::cancel_pending(Session& session) {
  for (auto& job : session.queue) {
    job->promise.set_exception(std::make_exception_ptr(JobCanceled()));
    job->state = JobState::kDone;
    jobs_.erase(job->id);
  }
  session.queue.clear();
}

SynthesisService::Session* SynthesisService::pick_session() {
  Session* best = nullptr;
  for (auto& [id, session] : sessions_) {
    if (session->running || session->queue.empty()) continue;
    if (best == nullptr || session->priority > best->priority ||
        (session->priority == best->priority &&
         session->last_served < best->last_served)) {
      best = session.get();
    }
  }
  return best;
}

void SynthesisService::driver_loop() {
  util::set_current_thread_name("dcsn-svc");
  util::MutexLock lock(mutex_);
  for (;;) {
    Session* session = pick_session();
    if (session == nullptr) {
      const bool backlog =
          std::any_of(sessions_.begin(), sessions_.end(),
                      [](const auto& s) { return !s.second->queue.empty(); });
      if (shutdown_ && (!drain_ || !backlog)) return;
      cv_.wait(lock);
      continue;
    }
    std::shared_ptr<Job> job = session->queue.front();
    session->queue.pop_front();
    session->running = true;
    session->last_served = ++serve_clock_;
    const std::int64_t seq = serve_clock_;
    job->state = JobState::kRunning;
    lock.unlock();
    run_job(*session, *job, seq);
    lock.lock();
    jobs_.erase(job->id);
    session->running = false;
    std::unique_ptr<Session> dead;
    if (session->closed) {
      cancel_pending(*session);  // anything submitted before close raced in
      auto it = sessions_.find(session->id);
      if (it != sessions_.end()) {
        dead = std::move(it->second);
        sessions_.erase(it);
      }
    }
    if (dead) {
      lock.unlock();
      dead.reset();  // engine teardown outside the lock
      lock.lock();
    }
    cv_.notify_all();  // this session may have runnable work again
  }
}

void SynthesisService::run_job(Session& session, Job& job, std::int64_t seq) {
  const double queue_wait = job.queued.seconds();
  DncSynthesizer& engine = *session.engine;
  engine.bind_cancel_token(&job.cancel);
  try {
    const SynthesisRequest& req = job.request;
    FrameStats stats;
    if (req.incremental && engine.dnc_config().tiled) {
      const SynthesisCache::Decision d =
          session.cache.plan(engine, *req.field, req.spots);
      stats = engine.synthesize(*req.field, req.spots,
                                d.incremental ? &d.plan : nullptr);
      session.cache.commit(engine, *req.field, std::move(job.request.spots));
    } else {
      stats = engine.synthesize(*req.field, req.spots);
    }
    engine.bind_cancel_token(nullptr);
    stats.queue_wait_seconds = queue_wait;
    SynthesisResult result;
    result.stats = stats;
    result.content_hash = engine.texture().content_hash();
    result.service_seq = seq;
    if (req.capture_texture) result.texture = engine.texture();
    job.promise.set_value(std::move(result));
  } catch (...) {
    // Frame failures are session-local: the engine's failure protocol
    // already rearmed it, the cache's serial guard refuses the uncommitted
    // frame, and only this ticket observes the exception.
    engine.bind_cancel_token(nullptr);
    job.promise.set_exception(std::current_exception());
  }
}

}  // namespace dcsn::core
