#include "core/dnc_synthesizer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <string>
#include <thread>
#include <utility>

#include "core/tile_store.hpp"
#include "field/fingerprint.hpp"
#include "util/hash.hpp"

namespace dcsn::core {

using namespace std::chrono_literals;

namespace {

std::uint64_t fold_pod(const auto& value, std::uint64_t h) {
  return util::fnv1a(&value, sizeof(value), h);
}

/// The config component of a TileStore key: every parameter that changes
/// rendered pixels. Deliberately excluded: spot_count and seed (spots are an
/// explicit key input), scheduling knobs (processors, pipes, chunking,
/// stealing, bus/pipe timing models — the lattice makes pixels independent
/// of all of them), and the tile layout (the key carries the rect itself).
std::uint64_t hash_pixel_config(const SynthesisConfig& sc,
                                render::RasterAlgorithm algorithm) {
  std::uint64_t h = util::kFnv1aOffset;
  h = fold_pod(sc.texture_width, h);
  h = fold_pod(sc.texture_height, h);
  h = fold_pod(sc.spot_radius_px, h);
  h = fold_pod(static_cast<int>(sc.kind), h);
  h = fold_pod(sc.ellipse.max_stretch, h);
  h = fold_pod(sc.bent.mesh_cols, h);
  h = fold_pod(sc.bent.mesh_rows, h);
  h = fold_pod(sc.bent.length_px, h);
  h = fold_pod(sc.bent.trace_substeps, h);
  h = fold_pod(static_cast<int>(sc.profile_shape), h);
  h = fold_pod(sc.profile_resolution, h);
  h = fold_pod(sc.intensity_scale, h);
  const bool windowed = sc.window.has_value();
  h = fold_pod(windowed, h);
  if (windowed) {
    h = fold_pod(sc.window->x0, h);
    h = fold_pod(sc.window->y0, h);
    h = fold_pod(sc.window->x1, h);
    h = fold_pod(sc.window->y1, h);
  }
  // The two raster algorithms are coverage-identical but not bit-identical
  // (see test_rasterizer.cpp), so they must never share tiles.
  h = fold_pod(static_cast<int>(algorithm), h);
  return h;
}

}  // namespace

// Adapter handed to the Runtime registry. Pool workers may hold a snapshot
// of the registry from before a frame ended (or before the synthesizer was
// destroyed), so serve() takes a shared lock that detach() — called from
// the synthesizer's destructor — upgrades against. A post-frame serve()
// finds the frame closed and returns immediately; a post-destruction one
// finds the owner detached.
struct DncSynthesizer::FrameHandle : Runtime::SharedJob {
  explicit FrameHandle(DncSynthesizer* o) : owner(o) {}

  bool serve() override {
    util::ReaderLock lock(mutex);
    return owner != nullptr && owner->serve_frame(/*is_caller=*/false);
  }

  void detach() {
    util::WriterLock lock(mutex);
    owner = nullptr;
  }

  util::SharedMutex mutex;
  DncSynthesizer* owner DCSN_GUARDED_BY(mutex);
};

DncSynthesizer::DncSynthesizer(SynthesisConfig synthesis, DncConfig dnc)
    : DncSynthesizer(synthesis, dnc, Runtime::global()) {}

DncSynthesizer::DncSynthesizer(SynthesisConfig synthesis, DncConfig dnc,
                               Runtime& runtime)
    : synthesis_(synthesis),
      dnc_(dnc),
      runtime_(&runtime),
      final_(synthesis.texture_width, synthesis.texture_height),
      faults_(runtime.faults()) {
  DCSN_CHECK(dnc_.pipes >= 1, "need at least one graphics pipe");
  DCSN_CHECK(dnc_.processors >= dnc_.pipes,
             "each pipe needs at least one processor (its master)");
  DCSN_CHECK(dnc_.chunk_spots >= 1, "chunk size must be positive");

  bus_ = std::make_shared<render::Bus>(dnc_.bus_bytes_per_second);
  tile_key_config_hash_ = hash_pixel_config(synthesis_, dnc_.raster_algorithm);

  // Tiled mode: each pipe renders one region; otherwise each pipe renders
  // the full texture and the partials are blended. The cost-balanced
  // strategy re-derives the regions from each frame's spots; the grid is
  // its spot-independent starting point.
  if (dnc_.tiled) {
    tiles_ = make_tile_grid(synthesis_.texture_width, synthesis_.texture_height,
                            dnc_.pipes);
  }

  groups_.reserve(static_cast<std::size_t>(dnc_.pipes));
  for (int g = 0; g < dnc_.pipes; ++g) groups_.push_back(std::make_unique<Group>());
  auto profile = render::SpotProfile::make_shared(synthesis_.profile_shape,
                                                  synthesis_.profile_resolution);
  for (int g = 0; g < dnc_.pipes; ++g) {
    Group& group = *groups_[static_cast<std::size_t>(g)];
    render::PipeConfig pc;
    if (dnc_.tiled) {
      const Tile& tile = tiles_[static_cast<std::size_t>(g)];
      pc.width = tile.width;
      pc.height = tile.height;
    } else {
      pc.width = synthesis_.texture_width;
      pc.height = synthesis_.texture_height;
    }
    pc.state_change_seconds = dnc_.state_change_seconds;
    pc.raster_cost_multiplier = dnc_.raster_cost_multiplier;
    pc.queue_capacity = dnc_.pipe_queue_capacity;
    pc.raster_algorithm = dnc_.raster_algorithm;
    // Borrowed, not owned: an idle pipe with a matching behavioral config
    // is reshaped (resize_target) instead of constructing a fresh server
    // thread; the lease hands it back when this session ends.
    group.pipe = runtime_->acquire_pipe(pc, bus_, g);
    group.work = std::make_unique<util::StealableWorkCounter>(0, dnc_.chunk_spots);
    // Initial pipe state: the spot profile texture and additive blending.
    // Set once; per-spot state changes are exactly what the design avoids.
    group.pipe->bind_profile(profile);
    group.pipe->set_blend_mode(render::BlendMode::kAdditive);
    if (dnc_.tiled) {
      const Tile& tile = tiles_[static_cast<std::size_t>(g)];
      group.pipe->set_viewport_origin(tile.x0, tile.y0);
    }
    // Drain setup commands now so their state-change cost never bleeds into
    // the first frame's measurements.
    group.pipe->finish();
  }

  // The shared pool must be able to field this session's processor budget
  // even if this is the largest session the process has seen.
  runtime_->ensure_workers(dnc_.processors);
  frame_handle_ = std::make_shared<FrameHandle>(this);
}

DncSynthesizer::~DncSynthesizer() {
  // After detach, no pool worker can re-enter this object even if it still
  // holds the handle from an old registry snapshot; the unique lock inside
  // waits out any serve() in flight. Pipes return to the runtime pool via
  // their leases.
  frame_handle_->detach();
}

render::PipeStats DncSynthesizer::pipe_stats(int pipe) const {
  DCSN_CHECK(pipe >= 0 && pipe < dnc_.pipes, "pipe index out of range");
  return groups_[static_cast<std::size_t>(pipe)]->pipe->stats();
}

std::int64_t DncSynthesizer::global_index(const Group& group,
                                          std::int64_t local) const {
  return group.tile_indices
             ? (*group.tile_indices)[static_cast<std::size_t>(local)]
             : group.begin + local;
}

void DncSynthesizer::submit_to_pipe(Group& group, render::CommandBuffer&& buffer,
                                    const FaultInjector::Batch& submit_faults) const {
  // The batch holds one pre-drawn decision per spot in the buffer, keyed by
  // the spot's global index (see generate_chunk): whichever participant
  // submits the buffer, on whichever pipe, after whatever stealing split
  // the range, the decisions are the same — so a frame attempt fails under
  // a given seed iff one of *its* spots is a throw-hit, independent of
  // scheduling (the replay-determinism invariant).
  if (faults_ != nullptr) {
    faults_->apply(FaultSite::kPipeSubmit, submit_faults,
                   control_ != nullptr ? &control_->delay_penalty_ns : nullptr);
  }
  group.pipe->submit(std::move(buffer));
  if (control_ != nullptr) {
    control_->progress.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<double> DncSynthesizer::estimate_spot_costs(
    std::span<const SpotInstance> spots) const {
  // Relative weights only: the kd-cut is scale-invariant, so the absolute
  // per-spot seconds (PerfModel::per_spot_seconds) never move a cut — what
  // matters is how cost *varies* across spots. For bent spots that variation
  // is trace length: in stagnant flow the streamline tracer stops at the
  // seed and the ribbon degrades to a cheap point quad. Local speed over the
  // field max is the one-sample predictor of that, with a floor for the
  // degraded quad's fixed cost. Point/ellipse spots cost the same
  // everywhere, so they keep uniform weights (empty result).
  if (synthesis_.kind != SpotKind::kBent) return {};
  const double max_mag = job_field_->max_magnitude();
  if (!(max_mag > 0.0)) return {};
  constexpr double kDegradedQuadCost = 0.15;  // point quad vs full ribbon
  std::vector<double> costs(spots.size());
  for (std::size_t k = 0; k < spots.size(); ++k) {
    const field::Vec2 v = job_field_->sample(spots[k].position);
    const double speed = std::sqrt(v.x * v.x + v.y * v.y);
    costs[k] = kDegradedQuadCost + std::min(speed / max_mag, 1.0);
  }
  return costs;
}

void DncSynthesizer::prepare_tiles(std::span<const SpotInstance> spots) {
  if (dnc_.tile_strategy != TileStrategy::kCostBalanced || spots.empty()) return;
  const std::vector<double> costs = estimate_spot_costs(spots);
  std::vector<Tile> tiles =
      make_balanced_tiles(synthesis_.texture_width, synthesis_.texture_height,
                          dnc_.pipes, spots, job_generator_->mapping(), costs);
  // Reshape only the pipes whose region actually moved; for a static spot
  // set this settles after the first frame.
  for (int g = 0; g < dnc_.pipes; ++g) {
    Group& group = *groups_[static_cast<std::size_t>(g)];
    const Tile& old_tile = tiles_[static_cast<std::size_t>(g)];
    const Tile& new_tile = tiles[static_cast<std::size_t>(g)];
    if (new_tile.width != old_tile.width || new_tile.height != old_tile.height) {
      group.pipe->resize_target(new_tile.width, new_tile.height);
    }
    if (new_tile.x0 != old_tile.x0 || new_tile.y0 != old_tile.y0) {
      group.pipe->set_viewport_origin(new_tile.x0, new_tile.y0);
    }
  }
  tiles_ = std::move(tiles);
}

FrameStats DncSynthesizer::synthesize(const field::VectorField& f,
                                      std::span<const SpotInstance> spots,
                                      const FramePlan* plan) {
  const util::Stopwatch frame_watch;
  ++frame_serial_;
  FrameStats stats;
  stats.spots = static_cast<std::int64_t>(spots.size());
  DCSN_CHECK(plan == nullptr || dnc_.tiled,
             "an incremental plan requires tiled mode (per-tile retention)");
  DCSN_CHECK(plan == nullptr || plan->tile_dirty.size() == tiles_.size(),
             "incremental plan must flag exactly one entry per tile");
  check_canceled();  // a pre-start cancel abandons the frame before any work

  job_field_ = &f;
  job_spots_ = spots;
  job_generator_ = std::make_unique<SpotGeometryGenerator>(synthesis_, f);

  // --- preprocessing: partition the spot collection ---
  // Probe/fingerprint costs are charged to assign_seconds on purpose: they
  // are real per-frame preprocessing, and modeled_frame_seconds must not
  // get them for free.
  const util::Stopwatch assign_watch;
  std::vector<std::int64_t> assigned(static_cast<std::size_t>(dnc_.pipes), 0);
  // Content-addressed sharing (DncConfig::tile_cache): each tile's key is
  // derived from the inputs its pixels are a pure function of. A
  // NaN-poisoned field is uncacheable content — render this frame without
  // the store rather than share tiles keyed on unstable identity.
  TileStore* store = nullptr;
  std::uint64_t field_fp = 0;
  if (dnc_.tiled && dnc_.tile_cache) {
    const field::FieldFingerprint fp = field::fingerprint_field(f);
    if (fp.finite) {
      store = &runtime_->tile_store();
      field_fp = fp.hash;
    }
  }
  std::vector<TileKey> tile_keys;
  std::vector<TileStore::Checkout> checkouts;  // pins released on any exit
  if (dnc_.tiled) {
    // A planned frame keeps the tile grid frozen: the dirty flags were
    // derived against it, and reshaping would invalidate the retained
    // regions. kCostBalanced therefore re-balances only on full frames.
    if (plan == nullptr) prepare_tiles(spots);
    job_assignment_ = assign_spots_to_tiles(spots, job_generator_->mapping(),
                                            job_generator_->max_extent_px(), tiles_);
    tile_keys.resize(static_cast<std::size_t>(dnc_.pipes));
    checkouts.resize(static_cast<std::size_t>(dnc_.pipes));
    for (int g = 0; g < dnc_.pipes; ++g) {
      Group& group = *groups_[static_cast<std::size_t>(g)];
      group.tile_indices = &job_assignment_.per_tile[static_cast<std::size_t>(g)];
      const auto n = static_cast<std::int64_t>(group.tile_indices->size());
      const bool dirty =
          plan == nullptr || plan->tile_dirty[static_cast<std::size_t>(g)] != 0;
      group.cache_hit = false;
      if (store != nullptr) {
        const Tile& tile = tiles_[static_cast<std::size_t>(g)];
        tile_keys[static_cast<std::size_t>(g)] =
            TileKey{hash_spot_subset(spots, *group.tile_indices), field_fp,
                    tile_key_config_hash_, tile.x0, tile.y0, tile.width,
                    tile.height};
        if (dirty) {
          auto& checkout = checkouts[static_cast<std::size_t>(g)];
          // Fault site kStoreProbe is contained: a throw-hit is a failed
          // lookup, and a failed lookup is a miss — render the tile.
          if (fault_point_contained(FaultSite::kStoreProbe,
                                    0x70726f6265ULL ^
                                        static_cast<std::uint64_t>(g))) {
            checkout = store->probe(tile_keys[static_cast<std::size_t>(g)]);
          }
          group.cache_hit = static_cast<bool>(checkout);
          if (group.cache_hit) {
            stats.cache_tile_hits += 1;
            stats.cache_spots_skipped += n;
          } else {
            stats.cache_tile_misses += 1;
          }
        }
      }
      group.active = dirty && !group.cache_hit;
      if (group.active) {
        group.total_items = n;
        group.work->reset(n);
        assigned[static_cast<std::size_t>(g)] = n;
        stats.spots_submitted += n;
      } else {
        // Clean tile (identical spot set as last frame) or cache hit
        // (identical content already rendered, possibly by another
        // session): nothing to generate or rasterize. The group's
        // participants still act as thieves for dirty groups.
        group.total_items = 0;
        group.work->reset(0);
        if (!group.cache_hit) {
          stats.tiles_reused += 1;
          stats.spots_skipped += n;
        }
      }
    }
    stats.duplicated_spots = job_assignment_.duplicates;
  } else {
    const auto n = static_cast<std::int64_t>(spots.size());
    std::int64_t begin = 0;
    for (int g = 0; g < dnc_.pipes; ++g) {
      Group& group = *groups_[static_cast<std::size_t>(g)];
      const std::int64_t share = n / dnc_.pipes + (g < n % dnc_.pipes ? 1 : 0);
      group.tile_indices = nullptr;
      group.begin = begin;
      group.end = begin + share;
      begin += share;
      group.total_items = share;
      group.work->reset(share);
      group.active = true;
      group.cache_hit = false;
      assigned[static_cast<std::size_t>(g)] = share;
    }
    stats.spots_submitted = n;
  }
  stats.assign_seconds = assign_watch.seconds();

  const std::int64_t assigned_total =
      std::accumulate(assigned.begin(), assigned.end(), std::int64_t{0});
  const std::int64_t assigned_max =
      *std::max_element(assigned.begin(), assigned.end());
  stats.imbalance = assigned_total > 0
                        ? static_cast<double>(assigned_max) * dnc_.pipes /
                              static_cast<double>(assigned_total)
                        : 1.0;

  for (auto& group : groups_) {
    group->pipe->reset_stats();
    group->master_running.store(false, std::memory_order_relaxed);
    group->master_exited.store(false, std::memory_order_relaxed);
    group->inflight.store(0, std::memory_order_relaxed);
  }
  bus_->reset_stats();
  next_master_.store(0, std::memory_order_relaxed);
  masters_done_.store(0, std::memory_order_relaxed);
  {
    util::MutexLock lock(job_mutex_);
    slots_.assign(static_cast<std::size_t>(dnc_.processors), Slot{});
    slot_taken_.assign(static_cast<std::size_t>(dnc_.processors), 0);
    slot_taken_[0] = 1;        // the caller's reserved seat
    active_participants_ = 1;
    frame_open_ = true;
    // Start gate (the elastic replacement for the old start barrier): when
    // the frame has enough work to share, early participants line up until
    // a quorum joins or the deadline passes. Without it, on a loaded host a
    // small frame is over before a newly woken pool worker gets its first
    // timeslice — whichever participant runs first silently serializes the
    // whole frame, so masters never coexist and stealing never happens. The
    // deadline keeps the old barrier's failure mode out: a pool absorbed by
    // other sessions costs at most the gate window, never a stall.
    gate_expected_ = assigned_total >= dnc_.chunk_spots
                         ? std::min(dnc_.processors, 1 + runtime_->worker_count())
                         : 1;
    gate_open_ = gate_expected_ <= 1;
    // determinism: scheduling gate only — join order never affects pixels.
    gate_deadline_ = std::chrono::steady_clock::now() + 1500us;
  }

  // --- parallel phase: register the frame with the runtime and serve it.
  // The caller always participates; pool workers join up to the processor
  // budget (and serve other sessions' frames when this one is saturated).
  runtime_->register_job(frame_handle_);
  serve_frame(/*is_caller=*/true);
  runtime_->deregister_job(frame_handle_.get());

  if (frame_failed_.load(std::memory_order_acquire)) {
    // Abandon the frame: discard whatever buffers were in flight, rearm the
    // inboxes for the next frame and hand the first failure to the caller.
    // No participant is active anymore (the caller waited them out), so
    // this cleanup runs single-threaded.
    for (auto& group : groups_) {
      while (group->inbox.try_pop()) {
      }
      group->inbox.reopen();
      group->inflight.store(0, std::memory_order_relaxed);
    }
    std::exception_ptr error;
    {
      util::MutexLock lock(error_mutex_);
      error = std::exchange(frame_error_, nullptr);
    }
    frame_failed_.store(false, std::memory_order_release);
    job_generator_.reset();
    std::rethrow_exception(error);
  }

  // --- sequential gather: the overhead term c of eq. 3.2 ---
  // Readback textures come from the runtime's framebuffer pool: zeroed on
  // checkout, fully overwritten by read_back_into, returned right after —
  // allocation-free in steady state.
  const util::Stopwatch gather_watch;
  render::FramebufferPool& buffers = runtime_->framebuffers();
  if (dnc_.tiled) {
    // The retention compose, streamed: only active pipes cross the bus and
    // are copied into place, one at a time (no staging of all partials);
    // clean tiles of an incremental frame keep their retained region of
    // final_ untouched, and cache-hit tiles compose the store's pinned
    // pixels directly (no readback, no staging copy).
    // render::compose_tiles_masked implements the same merge for callers
    // that already hold materialized tiles.
    //
    // Publishes happen here and only here — after the frame-failure check
    // above — and each insert is atomic under its shard lock, so a failed
    // or canceled frame contributes nothing to the store: other sessions
    // can never observe a partial tile.
    for (int g = 0; g < dnc_.pipes; ++g) {
      Group& group = *groups_[static_cast<std::size_t>(g)];
      const Tile& tile = tiles_[static_cast<std::size_t>(g)];
      const TileKey* key =
          store != nullptr ? &tile_keys[static_cast<std::size_t>(g)] : nullptr;
      auto account_publish = [&](TileStore::PublishOutcome outcome) {
        if (outcome.inserted) stats.cache_tiles_published += 1;
        stats.cache_evictions += outcome.evicted;
      };
      if (group.cache_hit) {
        auto& checkout = checkouts[static_cast<std::size_t>(g)];
        final_.copy_rect_from(checkout.pixels(), tile.x0, tile.y0);
        stats.cache_hit_bytes += checkout.pixels().byte_size();
        checkout.reset();  // unpin as soon as the pixels are composed
        continue;
      }
      if (!group.active) {
        // Retained clean tile. Its pixels already sit in final_; publish
        // them on a miss so a long-lived incremental session still seeds
        // the store for other sessions ("a clean miss publishes after
        // commit"). The publish is best-effort: an injected fault at
        // either the publish or the checkout for its staging copy skips
        // it — the frame's own pixels are already complete.
        if (key != nullptr && !store->contains(*key) &&
            fault_point_contained(FaultSite::kStorePublish,
                                  0x7075626cULL ^
                                      static_cast<std::uint64_t>(g)) &&
            fault_point_contained(FaultSite::kFramebufferCheckout,
                                  0x6662636fULL ^
                                      static_cast<std::uint64_t>(g))) {
          render::Framebuffer copy = buffers.acquire(tile.width, tile.height);
          final_.extract_rect_into(copy, tile.x0, tile.y0);
          account_publish(store->publish(*key, std::move(copy)));
        }
        continue;
      }
      // Fault site kFramebufferCheckout, mandatory path: the readback needs
      // this buffer, so a throw-hit fails the frame (the gather runs
      // single-threaded on the caller — the exception propagates directly,
      // no buffer is held, and the store saw nothing partial).
      fault_point(FaultSite::kFramebufferCheckout,
                  0x6662636fULL ^ static_cast<std::uint64_t>(g));
      render::Framebuffer part = buffers.acquire(tile.width, tile.height);
      group.pipe->read_back_into(part);
      final_.copy_rect_from(part, tile.x0, tile.y0);
      stats.readback_bytes += part.byte_size();
      if (key != nullptr &&
          fault_point_contained(FaultSite::kStorePublish,
                                0x7075626cULL ^ static_cast<std::uint64_t>(g))) {
        // Zero-copy publish: the store takes the readback buffer itself
        // (and recycles it into the same pool on duplicate/reject). A
        // faulted publish is contained — the buffer goes straight back to
        // the pool instead, so no census leak either way.
        account_publish(store->publish(*key, std::move(part)));
      } else {
        buffers.release(std::move(part));
      }
    }
  } else {
    // The checkout fault precedes the clear on purpose: a throw-hit must
    // leave final_ holding the previous completed frame (stale but intact),
    // which is what a degraded serve hands out.
    fault_point(FaultSite::kFramebufferCheckout, 0x6662636fULL);
    final_.clear();
    render::Framebuffer part =
        buffers.acquire(final_.width(), final_.height());
    for (auto& group : groups_) {
      group->pipe->read_back_into(part);
      final_.accumulate(part);
      stats.readback_bytes += part.byte_size();
    }
    buffers.release(std::move(part));
  }
  stats.gather_seconds = gather_watch.seconds();

  // Authoritative deadline verdict. Every injected delay of this frame has
  // been charged by now and this thread is the only one still running, so
  // this check is a pure function of the workload and the fault seed: a
  // frame whose total virtual penalty blew the budget times out on every
  // replay, whether or not any mid-frame check happened to notice first
  // (mid-frame observations depend on thread interleaving; the total does
  // not). A throw here leaves final_ fully composed — the texture a
  // degraded serve hands out is still a complete frame.
  check_canceled();

  // Lattice-budget canary (see FrameStats::peak_pixel_magnitude): one pass
  // over the final texture, outside the modeled critical path.
  const auto [px_lo, px_hi] = final_.min_max();
  stats.peak_pixel_magnitude =
      std::max(std::abs(static_cast<double>(px_lo)),
               std::abs(static_cast<double>(px_hi)));

  // --- bookkeeping ---
  // slots_ is quiescent: the caller observed itself as the last active
  // participant before closing the frame.
  for (const Slot& slot : slots_) {
    stats.genP_seconds += slot.genP_seconds;
    stats.genP_critical_seconds =
        std::max(stats.genP_critical_seconds, slot.genP_seconds);
    stats.steal_seconds += slot.steal_seconds;
    stats.stolen_chunks += slot.stolen_chunks;
    stats.stolen_spots += slot.stolen_spots;
    stats.cross_session_chunks += slot.cross_session_chunks;
    stats.cross_session_spots += slot.cross_session_spots;
  }
  for (auto& group : groups_) {
    const render::PipeStats ps = group->pipe->stats();
    stats.genT_seconds += ps.busy_seconds;
    stats.genT_critical_seconds =
        std::max(stats.genT_critical_seconds, ps.busy_seconds);
    stats.vertices += ps.vertices;
    stats.geometry_bytes += ps.bytes_received;
    stats.pipe_stall_seconds += ps.stall_seconds;
    stats.pipe_state_seconds += ps.state_seconds;
    stats.raster += ps.raster;
  }
  stats.modeled_frame_seconds =
      stats.assign_seconds +
      std::max(stats.genP_critical_seconds, stats.genT_critical_seconds) +
      stats.gather_seconds;
  stats.frame_seconds = frame_watch.seconds();
  job_generator_.reset();
  return stats;
}

bool DncSynthesizer::serve_frame(bool is_caller) {
  Slot* slot = nullptr;
  int ordinal = 0;
  {
    util::MutexLock lock(job_mutex_);
    if (!frame_open_) return false;
    if (is_caller) {
      ordinal = 0;  // reserved at frame open
    } else {
      ordinal = -1;
      for (int k = 1; k < dnc_.processors; ++k) {
        if (!slot_taken_[static_cast<std::size_t>(k)]) {
          ordinal = k;
          break;
        }
      }
      if (ordinal < 0) return false;  // the processor budget is occupied
      slot_taken_[static_cast<std::size_t>(ordinal)] = 1;
      ++active_participants_;
    }
    slot = &slots_[static_cast<std::size_t>(ordinal)];
  }
  {
    // Line up at the start gate: quorum or deadline opens it for everyone.
    util::MutexLock lock(job_mutex_);
    if (!gate_open_) {
      if (active_participants_ >= gate_expected_) {
        gate_open_ = true;
        job_cv_.notify_all();
      } else {
        job_cv_.wait_until(lock, gate_deadline_,
                           [&]() DCSN_REQUIRES(job_mutex_) { return gate_open_; });
        if (!gate_open_) {
          gate_open_ = true;  // deadline: open for every later participant
          job_cv_.notify_all();
        }
      }
    }
  }
  const bool worked = participant_loop(*slot, ordinal, is_caller);
  if (is_caller) {
    // participant_loop only returns to the caller at completion, where it
    // already closed the frame under job_mutex_.
    return worked;
  }
  {
    util::MutexLock lock(job_mutex_);
    slot_taken_[static_cast<std::size_t>(ordinal)] = 0;
    --active_participants_;
  }
  job_cv_.notify_all();
  return worked;
}

bool DncSynthesizer::participant_loop(Slot& slot, int ordinal, bool is_caller) {
  const int pipe_count = dnc_.pipes;
  bool worked = false;
  for (;;) {
    // Unclaimed master roles come first: a group's counter only becomes
    // claimable once its master runs, so starting masters is what unlocks
    // parallelism for everyone else.
    int m = next_master_.load(std::memory_order_relaxed);
    bool claimed = false;
    while (m < pipe_count && !claimed) {
      claimed = next_master_.compare_exchange_weak(m, m + 1,
                                                   std::memory_order_acq_rel);
    }
    if (claimed) {
      worked = true;
      try {
        run_master(*groups_[static_cast<std::size_t>(m)], slot, is_caller);
      } catch (...) {
        // A master must never leave the frame protocol by exception: record
        // it, unblock everyone, and still retire the role so the caller's
        // completion count reaches pipe_count.
        fail_frame(std::current_exception());
      }
      masters_done_.fetch_add(1, std::memory_order_acq_rel);
      job_cv_.notify_all();
      continue;
    }
    bool produced = false;
    try {
      produced = producer_once(slot, ordinal, is_caller);
    } catch (...) {
      fail_frame(std::current_exception());
    }
    if (produced) {
      worked = true;
      continue;
    }
    if (!is_caller) return worked;  // pool worker: hand capacity elsewhere
    // The caller stays to the end: masters may still be running on pool
    // workers, late masters may still need claiming after a failure, and a
    // straggler participant may still be mid-chunk. The timed wait bounds
    // the recheck latency; completion transitions signal job_cv_.
    util::MutexLock lock(job_mutex_);
    if (masters_done_.load(std::memory_order_acquire) == pipe_count &&
        active_participants_ == 1) {
      // Close under the same lock that observed quiescence so no straggler
      // can join (and touch slots_) after the caller walks away.
      frame_open_ = false;
      return worked;
    }
    job_cv_.wait_for(lock, 1ms);
  }
}

void DncSynthesizer::run_master(Group& group, Slot& slot, bool is_caller) {
  group.master_running.store(true, std::memory_order_release);
  runtime_->notify_workers();  // this group's counter just became claimable
  // A clean-tile group renders nothing this frame; clearing would destroy
  // nothing (the retained pixels live in final_, not in the pipe target)
  // but would cost raster time and skew genT accounting.
  if (group.active) group.pipe->clear();

  auto submit = [&](Message& msg) {
    // A throw-hit inside submit_to_pipe leaves the in-flight registration
    // standing; that is fine — the frame fails, and the failed-frame
    // cleanup in synthesize() resets every group's inflight to zero.
    submit_to_pipe(group, std::move(msg.buffer), msg.submit_faults);
    group.inflight.fetch_sub(1, std::memory_order_seq_cst);
  };

  for (;;) {
    if (frame_failed_.load(std::memory_order_relaxed)) return;
    check_canceled();
    // Forwarding buffers has priority: a starved pipe is worse than a
    // delayed chunk of master-side generation.
    if (auto msg = group.inbox.try_pop()) {
      submit(*msg);
      continue;
    }
    if (const auto range = group.work->claim(); !range.empty()) {
      FaultInjector::Batch submit_faults;
      render::CommandBuffer buffer =
          generate_chunk(group, range, slot, is_caller, &submit_faults);
      submit_to_pipe(group, std::move(buffer), submit_faults);
      continue;
    }
    if (dnc_.steal && master_steal_once(group, slot, is_caller)) continue;
    // Exit condition, item-counted: own counter drained and no registered
    // delivery is still on its way to this pipe. Two guarantees close the
    // races. (1) Same-counter claims: the seq_cst fence pairs with the
    // producers' increment-fence-claim sequence — if a producer's
    // successful claim is visible here (the counter reads drained), its
    // inflight increment is visible too. (2) Cross-counter deliveries
    // (contiguous mode routes stolen chunks to the thief's affinity pipe):
    // the exited flag is stored *before* re-reading inflight, while the
    // producer increments inflight *before* reading the flag — one side
    // must see the other, so the master either stays for the registrant or
    // the registrant reroutes. A phantom (an increment whose claim comes
    // back empty) only delays exit by one timed wait, never loses work.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (group.work->drained() &&
        group.inflight.load(std::memory_order_seq_cst) == 0) {
      group.master_exited.store(true, std::memory_order_seq_cst);
      if (group.inflight.load(std::memory_order_seq_cst) == 0) break;
      group.master_exited.store(false, std::memory_order_seq_cst);
      continue;  // a delivery registered in the window; stay for it
    }
    // Fault site kQueuePop (scheduling class): a drop models a spurious
    // timeout — skip the wait and rescan, which is exactly the path a real
    // spurious CV wakeup takes; the exit handshake must terminate through
    // it. A delay models preemption before the wait.
    if (faults_ != nullptr &&
        faults_->check_scheduling(FaultSite::kQueuePop) ==
            FaultInjector::Action::kDrop) {
      std::this_thread::yield();
      continue;
    }
    if (auto msg = group.inbox.pop_for(500us)) submit(*msg);
    // On timeout (or closed inbox) just rescan: the loop head re-checks
    // failure, new work and the exit condition.
  }
  group.pipe->finish();
}

DncSynthesizer::Group* DncSynthesizer::pick_victim(const Group* self,
                                                   bool for_master) {
  Group* best = nullptr;
  std::int64_t best_remaining = 0;
  for (auto& candidate : groups_) {
    if (candidate.get() == self) continue;
    if (!candidate->master_running.load(std::memory_order_acquire)) {
      // Producers deliver with a blocking push, so they need a live
      // consumer. Masters may raid a group whose master has not started:
      // in contiguous mode the loot renders on the thief's own pipe, and
      // in tiled mode it is buffered in the victim's inbox — but only
      // while there is headroom for every potential master-held message,
      // so the non-blocking delivery below can never wedge on an inbox
      // nobody drains yet.
      if (!for_master) continue;
      if (dnc_.tiled &&
          candidate->inbox.size() + static_cast<std::size_t>(dnc_.pipes) >=
              candidate->inbox.capacity()) {
        continue;
      }
    }
    const std::int64_t r = candidate->work->remaining();
    if (r > best_remaining) {
      best_remaining = r;
      best = candidate.get();
    }
  }
  return best;
}

bool DncSynthesizer::master_steal_once(Group& me, Slot& slot, bool is_caller) {
  Group* victim = pick_victim(&me, /*for_master=*/true);
  if (victim == nullptr) return false;
  // Register against the victim before the claim (the same-counter Dekker
  // pattern the exit condition relies on); if the loot ends up on this
  // master's own pipe the registration is retired right after the submit.
  victim->inflight.fetch_add(1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const auto range = victim->work->steal(dnc_.chunk_spots);
  if (range.empty()) {
    victim->inflight.fetch_sub(1, std::memory_order_seq_cst);
    return true;  // raced with the owner; rescan
  }
  const util::ThreadCpuStopwatch watch;
  Message msg;
  msg.buffer = generate_chunk(*victim, range, slot, is_caller,
                              &msg.submit_faults);
  msg.items = range.size();
  slot.steal_seconds += watch.seconds();
  slot.stolen_chunks += 1;
  slot.stolen_spots += range.size();
  if (!dnc_.tiled &&
      (!victim->master_running.load(std::memory_order_acquire) ||
       me.pipe->stats().bytes_received <=
           victim->pipe->stats().bytes_received)) {
    // Contiguous: every pipe renders the full texture and the gather
    // blends by addition, so the loot may go through the thief's own pipe
    // — but only when that pipe is the less loaded of the two (submitted
    // geometry bytes count queued work): unconditional re-routing would
    // *create* raster imbalance on the tail of an already balanced frame.
    // A not-yet-running victim always renders on the thief (nobody drains
    // its inbox yet).
    submit_to_pipe(me, std::move(msg.buffer), msg.submit_faults);
    victim->inflight.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }
  // Tiled (always), or a contiguous victim whose pipe is the lighter one:
  // the buffer is routed back through the owner's inbox. A master must
  // never block on a foreign inbox — two masters blocked on each other's
  // full inbox would deadlock — so alternate try_push with draining its
  // own. Termination: a running victim drains its inbox until its
  // in-flight count (which includes this message) is zero, and a
  // not-yet-started tiled victim had `pipes` slots of headroom at
  // selection, at most one undelivered message per master-thief.
  while (!victim->inbox.try_push_or_keep(msg)) {
    if (frame_failed_.load(std::memory_order_relaxed)) return true;
    if (auto own = me.inbox.try_pop()) {
      submit_to_pipe(me, std::move(own->buffer), own->submit_faults);
      me.inflight.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      std::this_thread::yield();
    }
  }
  return true;
}

bool DncSynthesizer::producer_once(Slot& slot, int ordinal, bool is_caller) {
  if (frame_failed_.load(std::memory_order_relaxed)) return false;
  check_canceled();
  // Affinity first (the front of the counter, like the old in-group
  // slaves); with stealing enabled, the most loaded running group after.
  Group& own = *groups_[static_cast<std::size_t>(ordinal % dnc_.pipes)];
  if (own.master_running.load(std::memory_order_acquire)) {
    own.inflight.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const auto range = own.work->claim();
    if (!range.empty()) {
      Message msg;
      msg.buffer = generate_chunk(own, range, slot, is_caller,
                                  &msg.submit_faults);
      msg.items = range.size();
      (void)own.inbox.push(std::move(msg));  // false = closed = frame failed
      return true;
    }
    own.inflight.fetch_sub(1, std::memory_order_seq_cst);
  }
  if (!dnc_.steal) return false;
  Group* victim = pick_victim(&own, /*for_master=*/false);
  if (victim == nullptr) return false;
  // Delivery target. Tiled mode has no choice: only the owning group's
  // pipe renders the stolen region. Contiguous mode routes the loot to the
  // thief's *affinity* pipe when that pipe carries less submitted geometry
  // (addition commutes across pipes, so sending work to the lighter pipe
  // balances rasterization the way stealing balances generation — while
  // the load comparison keeps tail-end steals from unbalancing an already
  // even frame). Cross-counter routing needs the two-phase handshake
  // against the destination master's exit (see run_master); when the
  // destination is unavailable the owner's inbox is always valid.
  Group* dest = victim;
  if (!dnc_.tiled && &own != victim &&
      own.master_running.load(std::memory_order_acquire) &&
      own.pipe->stats().bytes_received <
          victim->pipe->stats().bytes_received) {
    own.inflight.fetch_add(1, std::memory_order_seq_cst);
    if (own.master_exited.load(std::memory_order_seq_cst)) {
      own.inflight.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      dest = &own;
    }
  }
  if (dest == victim) {
    victim->inflight.fetch_add(1, std::memory_order_seq_cst);
  }
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const auto range = victim->work->steal(dnc_.chunk_spots);
  if (range.empty()) {
    dest->inflight.fetch_sub(1, std::memory_order_seq_cst);
    return true;  // raced; rescan
  }
  const util::ThreadCpuStopwatch watch;
  Message msg;
  msg.buffer = generate_chunk(*victim, range, slot, is_caller,
                              &msg.submit_faults);
  msg.items = range.size();
  slot.steal_seconds += watch.seconds();
  slot.stolen_chunks += 1;
  slot.stolen_spots += range.size();
  // Producers may block here: the destination's master is running, has the
  // delivery registered in its in-flight count, and drains its inbox until
  // that count reaches zero. close() wakes us on frame failure.
  (void)dest->inbox.push(std::move(msg));
  return true;
}

void DncSynthesizer::fail_frame(std::exception_ptr error) {
  {
    util::MutexLock lock(error_mutex_);
    if (!frame_error_) frame_error_ = error;
  }
  frame_failed_.store(true, std::memory_order_release);
  // Closing wakes blocked pops (masters) and makes blocked pushes
  // (producers, thieves) fail instead of waiting on a consumer that
  // already bailed.
  for (auto& group : groups_) group->inbox.close();
  job_cv_.notify_all();
}

render::CommandBuffer DncSynthesizer::generate_chunk(
    const Group& group, util::StealableWorkCounter::Range range, Slot& slot,
    bool is_caller, FaultInjector::Batch* submit_faults) {
  check_canceled();
  const util::ThreadCpuStopwatch watch;
  render::CommandBuffer buffer;
  buffer.reserve(static_cast<std::size_t>(range.size()),
                 static_cast<std::size_t>(synthesis_.vertices_per_spot()));
  for (std::int64_t local = range.begin; local < range.end; ++local) {
    const std::int64_t k = global_index(group, local);
    // Both outcome sites key on the spot's *global* index, not the chunk:
    // every spot is generated exactly once per attempt no matter how
    // stealing partitioned the counter, so the union of draws — and with
    // it the attempt's verdict — is a pure function of workload and seed.
    // kFieldSample strikes here (a poisoned field callback, or virtual
    // delay charged against the deadline); the spot's kPipeSubmit decision
    // is pre-drawn into the buffer's batch and strikes at submit time.
    fault_point(FaultSite::kFieldSample,
                0x6669656c64ULL ^ static_cast<std::uint64_t>(k));
    fault_predraw(FaultSite::kPipeSubmit,
                  0x7069706573ULL ^ static_cast<std::uint64_t>(k),
                  submit_faults);
    job_generator_->generate(job_spots_[static_cast<std::size_t>(k)], buffer);
  }
  slot.genP_seconds += watch.seconds();
  if (!is_caller && runtime_->active_job_count() > 1) {
    // A pool worker generated this chunk while another session's frame was
    // registered: capacity multiplexed across sessions.
    slot.cross_session_chunks += 1;
    slot.cross_session_spots += range.size();
  }
  // Chunk heartbeat for the no-progress watchdog.
  if (control_ != nullptr) {
    control_->progress.fetch_add(1, std::memory_order_relaxed);
  }
  return buffer;
}

}  // namespace dcsn::core
