#include "core/dnc_synthesizer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace dcsn::core {

DncSynthesizer::DncSynthesizer(SynthesisConfig synthesis, DncConfig dnc)
    : synthesis_(synthesis),
      dnc_(dnc),
      final_(synthesis.texture_width, synthesis.texture_height),
      start_barrier_(dnc.processors + 1),
      end_barrier_(dnc.processors + 1) {
  DCSN_CHECK(dnc_.pipes >= 1, "need at least one graphics pipe");
  DCSN_CHECK(dnc_.processors >= dnc_.pipes,
             "each pipe needs at least one processor (its master)");
  DCSN_CHECK(dnc_.chunk_spots >= 1, "chunk size must be positive");

  bus_ = std::make_shared<render::Bus>(dnc_.bus_bytes_per_second);

  // Tiled mode: each pipe renders one region; otherwise each pipe renders
  // the full texture and the partials are blended. The cost-balanced
  // strategy re-derives the regions from each frame's spots; the grid is
  // its spot-independent starting point.
  if (dnc_.tiled) {
    tiles_ = make_tile_grid(synthesis_.texture_width, synthesis_.texture_height,
                            dnc_.pipes);
  }

  groups_.reserve(static_cast<std::size_t>(dnc_.pipes));
  for (int g = 0; g < dnc_.pipes; ++g) groups_.push_back(std::make_unique<Group>());
  auto profile = render::SpotProfile::make_shared(synthesis_.profile_shape,
                                                  synthesis_.profile_resolution);
  for (int g = 0; g < dnc_.pipes; ++g) {
    Group& group = *groups_[static_cast<std::size_t>(g)];
    render::PipeConfig pc;
    if (dnc_.tiled) {
      const Tile& tile = tiles_[static_cast<std::size_t>(g)];
      pc.width = tile.width;
      pc.height = tile.height;
    } else {
      pc.width = synthesis_.texture_width;
      pc.height = synthesis_.texture_height;
    }
    pc.state_change_seconds = dnc_.state_change_seconds;
    pc.raster_cost_multiplier = dnc_.raster_cost_multiplier;
    pc.queue_capacity = dnc_.pipe_queue_capacity;
    pc.raster_algorithm = dnc_.raster_algorithm;
    group.pipe = std::make_unique<render::GraphicsPipe>(pc, bus_, g);
    group.work = std::make_unique<util::StealableWorkCounter>(0, dnc_.chunk_spots);
    // Initial pipe state: the spot profile texture and additive blending.
    // Set once; per-spot state changes are exactly what the design avoids.
    group.pipe->bind_profile(profile);
    group.pipe->set_blend_mode(render::BlendMode::kAdditive);
    if (dnc_.tiled) {
      const Tile& tile = tiles_[static_cast<std::size_t>(g)];
      group.pipe->set_viewport_origin(tile.x0, tile.y0);
    }
    // Drain setup commands now so their state-change cost never bleeds into
    // the first frame's measurements.
    group.pipe->finish();
  }

  // Processors are partitioned evenly over the pipes (paper §4): worker w
  // belongs to group w % pipes, and the first worker of each group is its
  // master.
  worker_genP_.resize(static_cast<std::size_t>(dnc_.processors), 0.0);
  worker_steal_seconds_.resize(static_cast<std::size_t>(dnc_.processors), 0.0);
  worker_stolen_chunks_.resize(static_cast<std::size_t>(dnc_.processors), 0);
  worker_stolen_spots_.resize(static_cast<std::size_t>(dnc_.processors), 0);
  for (int w = 0; w < dnc_.processors; ++w) {
    const int g = w % dnc_.pipes;
    const bool is_master = w < dnc_.pipes;
    if (!is_master) ++groups_[static_cast<std::size_t>(g)]->slave_count;
  }
  workers_.reserve(static_cast<std::size_t>(dnc_.processors));
  for (int w = 0; w < dnc_.processors; ++w) {
    const int g = w % dnc_.pipes;
    const bool is_master = w < dnc_.pipes;
    workers_.emplace_back(
        [this, w, g, is_master] { worker_loop(w, g, is_master); });
  }
}

DncSynthesizer::~DncSynthesizer() {
  stop_ = true;
  start_barrier_.arrive_and_wait();  // release workers into the stop check
}

render::PipeStats DncSynthesizer::pipe_stats(int pipe) const {
  DCSN_CHECK(pipe >= 0 && pipe < dnc_.pipes, "pipe index out of range");
  return groups_[static_cast<std::size_t>(pipe)]->pipe->stats();
}

std::int64_t DncSynthesizer::global_index(const Group& group,
                                          std::int64_t local) const {
  return group.tile_indices
             ? (*group.tile_indices)[static_cast<std::size_t>(local)]
             : group.begin + local;
}

std::vector<double> DncSynthesizer::estimate_spot_costs(
    std::span<const SpotInstance> spots) const {
  // Relative weights only: the kd-cut is scale-invariant, so the absolute
  // per-spot seconds (PerfModel::per_spot_seconds) never move a cut — what
  // matters is how cost *varies* across spots. For bent spots that variation
  // is trace length: in stagnant flow the streamline tracer stops at the
  // seed and the ribbon degrades to a cheap point quad. Local speed over the
  // field max is the one-sample predictor of that, with a floor for the
  // degraded quad's fixed cost. Point/ellipse spots cost the same
  // everywhere, so they keep uniform weights (empty result).
  if (synthesis_.kind != SpotKind::kBent) return {};
  const double max_mag = job_field_->max_magnitude();
  if (!(max_mag > 0.0)) return {};
  constexpr double kDegradedQuadCost = 0.15;  // point quad vs full ribbon
  std::vector<double> costs(spots.size());
  for (std::size_t k = 0; k < spots.size(); ++k) {
    const field::Vec2 v = job_field_->sample(spots[k].position);
    const double speed = std::sqrt(v.x * v.x + v.y * v.y);
    costs[k] = kDegradedQuadCost + std::min(speed / max_mag, 1.0);
  }
  return costs;
}

void DncSynthesizer::prepare_tiles(std::span<const SpotInstance> spots) {
  if (dnc_.tile_strategy != TileStrategy::kCostBalanced || spots.empty()) return;
  const std::vector<double> costs = estimate_spot_costs(spots);
  std::vector<Tile> tiles =
      make_balanced_tiles(synthesis_.texture_width, synthesis_.texture_height,
                          dnc_.pipes, spots, job_generator_->mapping(), costs);
  // Reshape only the pipes whose region actually moved; for a static spot
  // set this settles after the first frame.
  for (int g = 0; g < dnc_.pipes; ++g) {
    Group& group = *groups_[static_cast<std::size_t>(g)];
    const Tile& old_tile = tiles_[static_cast<std::size_t>(g)];
    const Tile& new_tile = tiles[static_cast<std::size_t>(g)];
    if (new_tile.width != old_tile.width || new_tile.height != old_tile.height) {
      group.pipe->resize_target(new_tile.width, new_tile.height);
    }
    if (new_tile.x0 != old_tile.x0 || new_tile.y0 != old_tile.y0) {
      group.pipe->set_viewport_origin(new_tile.x0, new_tile.y0);
    }
  }
  tiles_ = std::move(tiles);
}

FrameStats DncSynthesizer::synthesize(const field::VectorField& f,
                                      std::span<const SpotInstance> spots,
                                      const FramePlan* plan) {
  const util::Stopwatch frame_watch;
  ++frame_serial_;
  FrameStats stats;
  stats.spots = static_cast<std::int64_t>(spots.size());
  DCSN_CHECK(plan == nullptr || dnc_.tiled,
             "an incremental plan requires tiled mode (per-tile retention)");
  DCSN_CHECK(plan == nullptr || plan->tile_dirty.size() == tiles_.size(),
             "incremental plan must flag exactly one entry per tile");

  job_field_ = &f;
  job_spots_ = spots;
  job_generator_ = std::make_unique<SpotGeometryGenerator>(synthesis_, f);

  // --- preprocessing: partition the spot collection ---
  const util::Stopwatch assign_watch;
  std::vector<std::int64_t> assigned(static_cast<std::size_t>(dnc_.pipes), 0);
  if (dnc_.tiled) {
    // A planned frame keeps the tile grid frozen: the dirty flags were
    // derived against it, and reshaping would invalidate the retained
    // regions. kCostBalanced therefore re-balances only on full frames.
    if (plan == nullptr) prepare_tiles(spots);
    job_assignment_ = assign_spots_to_tiles(spots, job_generator_->mapping(),
                                            job_generator_->max_extent_px(), tiles_);
    for (int g = 0; g < dnc_.pipes; ++g) {
      Group& group = *groups_[static_cast<std::size_t>(g)];
      group.tile_indices = &job_assignment_.per_tile[static_cast<std::size_t>(g)];
      const auto n = static_cast<std::int64_t>(group.tile_indices->size());
      group.active =
          plan == nullptr || plan->tile_dirty[static_cast<std::size_t>(g)] != 0;
      if (group.active) {
        group.total_items = n;
        group.work->reset(n);
        assigned[static_cast<std::size_t>(g)] = n;
        stats.spots_submitted += n;
      } else {
        // Clean tile: identical spot set as last frame, nothing to do. The
        // group's members still participate as thieves for dirty groups.
        group.total_items = 0;
        group.work->reset(0);
        stats.tiles_reused += 1;
        stats.spots_skipped += n;
      }
    }
    stats.duplicated_spots = job_assignment_.duplicates;
  } else {
    const auto n = static_cast<std::int64_t>(spots.size());
    std::int64_t begin = 0;
    for (int g = 0; g < dnc_.pipes; ++g) {
      Group& group = *groups_[static_cast<std::size_t>(g)];
      const std::int64_t share = n / dnc_.pipes + (g < n % dnc_.pipes ? 1 : 0);
      group.tile_indices = nullptr;
      group.begin = begin;
      group.end = begin + share;
      begin += share;
      group.total_items = share;
      group.work->reset(share);
      group.active = true;
      assigned[static_cast<std::size_t>(g)] = share;
    }
    stats.spots_submitted = n;
  }
  stats.assign_seconds = assign_watch.seconds();

  const std::int64_t assigned_total =
      std::accumulate(assigned.begin(), assigned.end(), std::int64_t{0});
  const std::int64_t assigned_max =
      *std::max_element(assigned.begin(), assigned.end());
  stats.imbalance = assigned_total > 0
                        ? static_cast<double>(assigned_max) * dnc_.pipes /
                              static_cast<double>(assigned_total)
                        : 1.0;

  for (auto& group : groups_) group->pipe->reset_stats();
  bus_->reset_stats();

  // --- parallel phase: all process groups generate and render ---
  start_barrier_.arrive_and_wait();
  end_barrier_.arrive_and_wait();

  if (frame_failed_.load(std::memory_order_acquire)) {
    // Abandon the frame: discard whatever buffers were in flight, rearm the
    // inboxes for the next frame and hand the first failure to the caller.
    for (auto& group : groups_) {
      while (group->inbox.try_pop()) {
      }
      group->inbox.reopen();
    }
    std::exception_ptr error;
    {
      std::lock_guard lock(error_mutex_);
      error = std::exchange(frame_error_, nullptr);
    }
    frame_failed_.store(false, std::memory_order_release);
    job_generator_.reset();
    std::rethrow_exception(error);
  }

  // --- sequential gather: the overhead term c of eq. 3.2 ---
  const util::Stopwatch gather_watch;
  if (dnc_.tiled) {
    // The retention compose, streamed: only active pipes cross the bus and
    // are copied into place, one at a time (no staging of all partials);
    // clean tiles of an incremental frame keep their retained region of
    // final_ untouched. render::compose_tiles_masked implements the same
    // merge for callers that already hold materialized tiles.
    for (int g = 0; g < dnc_.pipes; ++g) {
      Group& group = *groups_[static_cast<std::size_t>(g)];
      if (!group.active) continue;
      const Tile& tile = tiles_[static_cast<std::size_t>(g)];
      const render::Framebuffer part = group.pipe->read_back();
      final_.copy_rect_from(part, tile.x0, tile.y0);
      stats.readback_bytes += part.byte_size();
    }
  } else {
    final_.clear();
    for (auto& group : groups_) {
      const render::Framebuffer part = group->pipe->read_back();
      final_.accumulate(part);
      stats.readback_bytes += part.byte_size();
    }
  }
  stats.gather_seconds = gather_watch.seconds();

  // Lattice-budget canary (see FrameStats::peak_pixel_magnitude): one pass
  // over the final texture, outside the modeled critical path.
  const auto [px_lo, px_hi] = final_.min_max();
  stats.peak_pixel_magnitude =
      std::max(std::abs(static_cast<double>(px_lo)),
               std::abs(static_cast<double>(px_hi)));

  // --- bookkeeping ---
  for (const double s : worker_genP_) {
    stats.genP_seconds += s;
    stats.genP_critical_seconds = std::max(stats.genP_critical_seconds, s);
  }
  for (const double s : worker_steal_seconds_) stats.steal_seconds += s;
  for (const std::int64_t n : worker_stolen_chunks_) stats.stolen_chunks += n;
  for (const std::int64_t n : worker_stolen_spots_) stats.stolen_spots += n;
  for (auto& group : groups_) {
    const render::PipeStats ps = group->pipe->stats();
    stats.genT_seconds += ps.busy_seconds;
    stats.genT_critical_seconds =
        std::max(stats.genT_critical_seconds, ps.busy_seconds);
    stats.vertices += ps.vertices;
    stats.geometry_bytes += ps.bytes_received;
    stats.pipe_stall_seconds += ps.stall_seconds;
    stats.pipe_state_seconds += ps.state_seconds;
    stats.raster += ps.raster;
  }
  stats.modeled_frame_seconds =
      stats.assign_seconds +
      std::max(stats.genP_critical_seconds, stats.genT_critical_seconds) +
      stats.gather_seconds;
  stats.frame_seconds = frame_watch.seconds();
  job_generator_.reset();
  return stats;
}

void DncSynthesizer::worker_loop(int worker_id, int group_id, bool is_master) {
  util::set_current_thread_name((is_master ? "dcsn-m" : "dcsn-s") +
                                std::to_string(worker_id));
  Group& group = *groups_[static_cast<std::size_t>(group_id)];
  while (true) {
    start_barrier_.arrive_and_wait();
    if (stop_) return;
    const auto w = static_cast<std::size_t>(worker_id);
    worker_genP_[w] = 0.0;
    worker_steal_seconds_[w] = 0.0;
    worker_stolen_chunks_[w] = 0;
    worker_stolen_spots_[w] = 0;
    try {
      if (is_master) {
        run_master(group, group_id, worker_id);
      } else {
        run_slave(group, group_id, worker_id);
      }
    } catch (...) {
      // A worker must never leave the frame protocol by exception: record
      // it, unblock everyone, and still arrive at the end barrier so
      // synthesize() can rethrow on the caller thread.
      fail_frame(std::current_exception());
    }
    end_barrier_.arrive_and_wait();
  }
}

void DncSynthesizer::fail_frame(std::exception_ptr error) {
  {
    std::lock_guard lock(error_mutex_);
    if (!frame_error_) frame_error_ = error;
  }
  frame_failed_.store(true, std::memory_order_release);
  // Closing wakes blocked pops (masters) and makes blocked pushes (slaves,
  // thieves) fail instead of waiting on a consumer that already bailed.
  for (auto& group : groups_) group->inbox.close();
}

render::CommandBuffer DncSynthesizer::generate_chunk(
    const Group& group, util::StealableWorkCounter::Range range, int worker_id) {
  const util::ThreadCpuStopwatch watch;
  render::CommandBuffer buffer;
  buffer.reserve(static_cast<std::size_t>(range.size()),
                 static_cast<std::size_t>(synthesis_.vertices_per_spot()));
  for (std::int64_t local = range.begin; local < range.end; ++local) {
    const std::int64_t k = global_index(group, local);
    job_generator_->generate(job_spots_[static_cast<std::size_t>(k)], buffer);
  }
  worker_genP_[static_cast<std::size_t>(worker_id)] += watch.seconds();
  return buffer;
}

DncSynthesizer::Group* DncSynthesizer::pick_victim(int group_id) {
  Group* best = nullptr;
  std::int64_t best_remaining = 0;
  for (int g = 0; g < dnc_.pipes; ++g) {
    if (g == group_id) continue;
    const std::int64_t r = groups_[static_cast<std::size_t>(g)]->work->remaining();
    if (r > best_remaining) {
      best_remaining = r;
      best = groups_[static_cast<std::size_t>(g)].get();
    }
  }
  return best;
}

bool DncSynthesizer::steal_chunk(Group& victim, int worker_id, Message& out) {
  const auto range = victim.work->steal(dnc_.chunk_spots);
  if (range.empty()) return false;  // raced with the owner
  const util::ThreadCpuStopwatch watch;
  out.buffer = generate_chunk(victim, range, worker_id);
  out.items = range.size();
  out.done = false;
  const auto w = static_cast<std::size_t>(worker_id);
  worker_steal_seconds_[w] += watch.seconds();
  worker_stolen_chunks_[w] += 1;
  worker_stolen_spots_[w] += range.size();
  return true;
}

bool DncSynthesizer::master_steal_once(Group& group, int group_id, int worker_id,
                                       std::int64_t& items_done) {
  Group* victim = pick_victim(group_id);
  if (victim == nullptr) return false;
  Message msg;
  if (!steal_chunk(*victim, worker_id, msg)) return true;  // caller rescans
  if (!dnc_.tiled) {
    // Contiguous: every pipe renders the full texture and the gather blends
    // by addition, so stolen geometry goes through the thief's own pipe.
    group.pipe->submit(std::move(msg.buffer));
    return true;
  }
  // Tiled: only the owning group's pipe renders the stolen region, so the
  // buffer is routed back through the owner's inbox. A master must never
  // block on a foreign inbox — two masters blocked on each other's full
  // inbox would deadlock — so alternate try_push with draining its own.
  while (!victim->inbox.try_push_or_keep(msg)) {
    if (frame_failed_.load(std::memory_order_relaxed)) return true;
    if (auto own = group.inbox.try_pop()) {
      items_done += own->items;
      group.pipe->submit(std::move(own->buffer));
    } else {
      std::this_thread::yield();
    }
  }
  return true;
}

void DncSynthesizer::run_master(Group& group, int group_id, int worker_id) {
  // A clean-tile group renders nothing this frame; clearing would destroy
  // nothing (the retained pixels live in final_, not in the pipe target)
  // but would cost raster time and skew genT accounting.
  if (group.active) group.pipe->clear();
  int done_slaves = 0;
  std::int64_t items_done = 0;

  auto handle = [&](Message& msg) {
    if (msg.done) {
      ++done_slaves;
    } else {
      items_done += msg.items;
      group.pipe->submit(std::move(msg.buffer));
    }
  };

  while (true) {
    if (frame_failed_.load(std::memory_order_relaxed)) return;
    // Forwarding buffers has priority: a starved pipe is worse than a
    // delayed chunk of master-side generation.
    if (auto msg = group.inbox.try_pop()) {
      handle(*msg);
      continue;
    }
    if (const auto range = group.work->claim(); !range.empty()) {
      items_done += range.size();
      group.pipe->submit(generate_chunk(group, range, worker_id));
      continue;
    }
    if (dnc_.steal && master_steal_once(group, group_id, worker_id, items_done)) {
      continue;
    }
    // Out of immediate work. Contiguous termination: every slave has sent
    // its done marker (slaves only do so once no counter anywhere has work
    // left). Tiled termination: every spot assigned to this group has been
    // submitted to the pipe, whether generated here, by a slave, or by a
    // foreign thief.
    const bool waiting = dnc_.tiled ? items_done < group.total_items
                                    : done_slaves < group.slave_count;
    if (!waiting) break;
    if (auto msg = group.inbox.pop()) {
      handle(*msg);
      continue;
    }
    return;  // inbox closed: the frame failed under us
  }
  group.pipe->finish();
}

void DncSynthesizer::run_slave(Group& group, int group_id, int worker_id) {
  while (!frame_failed_.load(std::memory_order_relaxed)) {
    const auto range = group.work->claim();
    if (range.empty()) break;
    Message msg{generate_chunk(group, range, worker_id), range.size(), false};
    if (!group.inbox.push(std::move(msg))) return;  // closed: frame failed
  }
  if (dnc_.steal) {
    while (!frame_failed_.load(std::memory_order_relaxed)) {
      Group* victim = pick_victim(group_id);
      if (victim == nullptr) break;
      Message msg;
      if (!steal_chunk(*victim, worker_id, msg)) continue;  // raced; rescan
      // Contiguous: hand stolen geometry to this slave's own master (any
      // pipe may render it). Tiled: route it to the owning group's master.
      Group& dest = dnc_.tiled ? *victim : group;
      if (!dest.inbox.push(std::move(msg))) return;
    }
  }
  if (!dnc_.tiled) {
    // The done marker exists only in contiguous mode; tiled masters count
    // delivered spots instead, and a marker pushed after such a master
    // finished would leak into the next frame.
    (void)group.inbox.push({{}, 0, true});
  }
}

}  // namespace dcsn::core
