#include "core/dnc_synthesizer.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace dcsn::core {

DncSynthesizer::DncSynthesizer(SynthesisConfig synthesis, DncConfig dnc)
    : synthesis_(synthesis),
      dnc_(dnc),
      final_(synthesis.texture_width, synthesis.texture_height),
      start_barrier_(dnc.processors + 1),
      end_barrier_(dnc.processors + 1) {
  DCSN_CHECK(dnc_.pipes >= 1, "need at least one graphics pipe");
  DCSN_CHECK(dnc_.processors >= dnc_.pipes,
             "each pipe needs at least one processor (its master)");
  DCSN_CHECK(dnc_.chunk_spots >= 1, "chunk size must be positive");

  bus_ = std::make_shared<render::Bus>(dnc_.bus_bytes_per_second);

  // Tiled mode: each pipe renders one region; otherwise each pipe renders
  // the full texture and the partials are blended.
  if (dnc_.tiled) {
    tiles_ = make_tile_grid(synthesis_.texture_width, synthesis_.texture_height,
                            dnc_.pipes);
  }

  groups_.reserve(static_cast<std::size_t>(dnc_.pipes));
  for (int g = 0; g < dnc_.pipes; ++g) groups_.push_back(std::make_unique<Group>());
  auto profile = render::SpotProfile::make_shared(synthesis_.profile_shape,
                                                  synthesis_.profile_resolution);
  for (int g = 0; g < dnc_.pipes; ++g) {
    Group& group = *groups_[static_cast<std::size_t>(g)];
    render::PipeConfig pc;
    if (dnc_.tiled) {
      const Tile& tile = tiles_[static_cast<std::size_t>(g)];
      pc.width = tile.width;
      pc.height = tile.height;
    } else {
      pc.width = synthesis_.texture_width;
      pc.height = synthesis_.texture_height;
    }
    pc.state_change_seconds = dnc_.state_change_seconds;
    pc.raster_cost_multiplier = dnc_.raster_cost_multiplier;
    pc.queue_capacity = dnc_.pipe_queue_capacity;
    group.pipe = std::make_unique<render::GraphicsPipe>(pc, bus_, g);
    // Initial pipe state: the spot profile texture and additive blending.
    // Set once; per-spot state changes are exactly what the design avoids.
    group.pipe->bind_profile(profile);
    group.pipe->set_blend_mode(render::BlendMode::kAdditive);
    if (dnc_.tiled) {
      const Tile& tile = tiles_[static_cast<std::size_t>(g)];
      group.pipe->set_viewport_origin(static_cast<float>(tile.x0),
                                      static_cast<float>(tile.y0));
    }
    // Drain setup commands now so their state-change cost never bleeds into
    // the first frame's measurements.
    group.pipe->finish();
  }

  // Processors are partitioned evenly over the pipes (paper §4): worker w
  // belongs to group w % pipes, and the first worker of each group is its
  // master.
  worker_genP_.resize(static_cast<std::size_t>(dnc_.processors), 0.0);
  for (int w = 0; w < dnc_.processors; ++w) {
    const int g = w % dnc_.pipes;
    const bool is_master = w < dnc_.pipes;
    if (!is_master) ++groups_[static_cast<std::size_t>(g)]->slave_count;
  }
  workers_.reserve(static_cast<std::size_t>(dnc_.processors));
  for (int w = 0; w < dnc_.processors; ++w) {
    const int g = w % dnc_.pipes;
    const bool is_master = w < dnc_.pipes;
    workers_.emplace_back(
        [this, w, g, is_master] { worker_loop(w, g, is_master); });
  }
}

DncSynthesizer::~DncSynthesizer() {
  stop_ = true;
  start_barrier_.arrive_and_wait();  // release workers into the stop check
}

render::PipeStats DncSynthesizer::pipe_stats(int pipe) const {
  DCSN_CHECK(pipe >= 0 && pipe < dnc_.pipes, "pipe index out of range");
  return groups_[static_cast<std::size_t>(pipe)]->pipe->stats();
}

std::int64_t DncSynthesizer::global_index(const Group& group,
                                          std::int64_t local) const {
  return group.tile_indices
             ? (*group.tile_indices)[static_cast<std::size_t>(local)]
             : group.begin + local;
}

FrameStats DncSynthesizer::synthesize(const field::VectorField& f,
                                      std::span<const SpotInstance> spots) {
  const util::Stopwatch frame_watch;
  FrameStats stats;
  stats.spots = static_cast<std::int64_t>(spots.size());

  job_field_ = &f;
  job_spots_ = spots;
  job_generator_ = std::make_unique<SpotGeometryGenerator>(synthesis_, f);

  // --- preprocessing: partition the spot collection ---
  const util::Stopwatch assign_watch;
  if (dnc_.tiled) {
    job_assignment_ = assign_spots_to_tiles(spots, job_generator_->mapping(),
                                            job_generator_->max_extent_px(), tiles_);
    for (int g = 0; g < dnc_.pipes; ++g) {
      Group& group = *groups_[static_cast<std::size_t>(g)];
      group.tile_indices = &job_assignment_.per_tile[static_cast<std::size_t>(g)];
      group.work = std::make_unique<util::WorkCounter>(
          static_cast<std::int64_t>(group.tile_indices->size()), dnc_.chunk_spots);
      stats.spots_submitted +=
          static_cast<std::int64_t>(group.tile_indices->size());
    }
    stats.duplicated_spots = job_assignment_.duplicates;
  } else {
    const auto n = static_cast<std::int64_t>(spots.size());
    std::int64_t begin = 0;
    for (int g = 0; g < dnc_.pipes; ++g) {
      Group& group = *groups_[static_cast<std::size_t>(g)];
      const std::int64_t share = n / dnc_.pipes + (g < n % dnc_.pipes ? 1 : 0);
      group.tile_indices = nullptr;
      group.begin = begin;
      group.end = begin + share;
      begin += share;
      group.work =
          std::make_unique<util::WorkCounter>(share, dnc_.chunk_spots);
    }
    stats.spots_submitted = n;
  }
  stats.assign_seconds = assign_watch.seconds();

  for (auto& group : groups_) group->pipe->reset_stats();
  bus_->reset_stats();

  // --- parallel phase: all process groups generate and render ---
  start_barrier_.arrive_and_wait();
  end_barrier_.arrive_and_wait();

  // --- sequential gather: the overhead term c of eq. 3.2 ---
  const util::Stopwatch gather_watch;
  if (dnc_.tiled) {
    for (int g = 0; g < dnc_.pipes; ++g) {
      Group& group = *groups_[static_cast<std::size_t>(g)];
      const Tile& tile = tiles_[static_cast<std::size_t>(g)];
      const render::Framebuffer part = group.pipe->read_back();
      final_.copy_rect_from(part, tile.x0, tile.y0);
      stats.readback_bytes += part.byte_size();
    }
  } else {
    final_.clear();
    for (auto& group : groups_) {
      const render::Framebuffer part = group->pipe->read_back();
      final_.accumulate(part);
      stats.readback_bytes += part.byte_size();
    }
  }
  stats.gather_seconds = gather_watch.seconds();

  // --- bookkeeping ---
  for (const double s : worker_genP_) stats.genP_seconds += s;
  for (auto& group : groups_) {
    const render::PipeStats ps = group->pipe->stats();
    stats.genT_seconds += ps.busy_seconds;
    stats.vertices += ps.vertices;
    stats.geometry_bytes += ps.bytes_received;
    stats.pipe_stall_seconds += ps.stall_seconds;
    stats.pipe_state_seconds += ps.state_seconds;
    stats.raster += ps.raster;
  }
  stats.frame_seconds = frame_watch.seconds();
  job_generator_.reset();
  return stats;
}

void DncSynthesizer::worker_loop(int worker_id, int group_id, bool is_master) {
  util::set_current_thread_name((is_master ? "dcsn-m" : "dcsn-s") +
                                std::to_string(worker_id));
  Group& group = *groups_[static_cast<std::size_t>(group_id)];
  while (true) {
    start_barrier_.arrive_and_wait();
    if (stop_) return;
    worker_genP_[static_cast<std::size_t>(worker_id)] = 0.0;
    if (is_master) {
      run_master(group, worker_id);
    } else {
      run_slave(group, worker_id);
    }
    end_barrier_.arrive_and_wait();
  }
}

render::CommandBuffer DncSynthesizer::generate_chunk(
    const Group& group, util::WorkCounter::Range range, int worker_id) {
  const util::Stopwatch watch;
  render::CommandBuffer buffer;
  buffer.reserve(static_cast<std::size_t>(range.size()),
                 static_cast<std::size_t>(synthesis_.vertices_per_spot()));
  for (std::int64_t local = range.begin; local < range.end; ++local) {
    const std::int64_t k = global_index(group, local);
    job_generator_->generate(job_spots_[static_cast<std::size_t>(k)], buffer);
  }
  worker_genP_[static_cast<std::size_t>(worker_id)] += watch.seconds();
  return buffer;
}

void DncSynthesizer::run_master(Group& group, int worker_id) {
  group.pipe->clear();
  int done_slaves = 0;

  auto handle = [&](Message& msg) {
    if (msg.done) {
      ++done_slaves;
    } else {
      group.pipe->submit(std::move(msg.buffer));
    }
  };

  while (true) {
    // Forwarding slave buffers has priority: a starved pipe is worse than a
    // delayed chunk of master-side generation.
    if (auto msg = group.inbox.try_pop()) {
      handle(*msg);
      continue;
    }
    if (const auto range = group.work->claim(); !range.empty()) {
      group.pipe->submit(generate_chunk(group, range, worker_id));
      continue;
    }
    if (done_slaves < group.slave_count) {
      if (auto msg = group.inbox.pop()) {
        handle(*msg);
        continue;
      }
      break;  // queue closed (shutdown)
    }
    break;  // all work claimed, all slaves drained
  }
  group.pipe->finish();
}

void DncSynthesizer::run_slave(Group& group, int worker_id) {
  while (true) {
    const auto range = group.work->claim();
    if (range.empty()) break;
    group.inbox.push({generate_chunk(group, range, worker_id), false});
  }
  group.inbox.push({{}, true});
}

}  // namespace dcsn::core
