// Process-wide content-addressed tile cache: the cross-session memoization
// layer over the divide-and-conquer decomposition.
//
// PR 4 made every tile's pixels a *pure function* of three inputs — the
// spot subset assigned to the tile, the data field's content, and the
// raster configuration: rasterization is target-independent and
// accumulation is snapped to the contribution lattice, so the same inputs
// produce the same bits on any pipe, any worker interleaving, any session.
// That purity is what makes a shared cache sound: a tile rendered by one
// session IS the tile any other session would render for the same key, bit
// for bit. The TileStore exploits it — N sessions browsing the same dataset
// rasterize each tile once, not N times (the ROADMAP's millions-of-users
// direction; in the paper's terms, the divide step's independent work units
// become *reusable* work units).
//
//   TileKey      = hash(spot subset) + field fingerprint + hash(raster
//                  config) + the tile's pixel rectangle. Collision safety
//                  does not rest on the hashes alone: entries store the full
//                  key and every lookup compares it, so even a forced index
//                  collision (see Config::index_hash, the test seam) can
//                  only miss, never serve a wrong tile. What the hashes must
//                  guarantee is only that *distinct content rarely collides
//                  on all three 64-bit components at once* — the same
//                  accidental-collision standard the golden-frame suite
//                  already accepts for frame identity.
//   probe(key)   → refcounted Checkout (pin) on hit; the pinned pixels are
//                  immutable and safe to compose from without copying while
//                  the Checkout lives. Eviction never touches pinned
//                  entries.
//   publish(key, pixels) → moves a rendered tile in (no copy; the engine
//                  hands over its readback buffer). First writer wins;
//                  a duplicate, an over-budget reject, or an eviction sends
//                  the buffer to the configured FramebufferPool instead of
//                  the allocator.
//
// Bounded memory: the store is sharded (key-hash modulo) and each shard
// runs strict LRU under max_bytes / shards. The global invariant
// `stats().bytes <= max_bytes` holds at every instant — publish evicts
// unpinned tail entries first and *rejects* the insert when pinned entries
// leave no room, rather than ever overshooting. Counters (hits, misses,
// inserts, duplicates, evictions, rejects, live bytes/entries) feed
// FrameStats and the bench_tile_cache gate.
//
// Threading: one mutex per shard; probes of different shards never contend.
// Checkout release is lock-free (an atomic pin decrement). The store must
// outlive every Checkout taken from it — in practice it lives on the
// core::Runtime, which outlives every borrowing session.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/spot_source.hpp"
#include "render/framebuffer.hpp"
#include "render/framebuffer_pool.hpp"
#include "util/thread_annotations.hpp"

namespace dcsn::core {

/// Content identity of one cached tile. Hash components identify the
/// inputs; the rectangle identifies which region of the texture the pixels
/// are (two tiles with identical inputs but different rects are different
/// entries — target independence makes their pixels equal only when the
/// rects match the rasterized regions).
struct TileKey {
  std::uint64_t spot_hash = 0;    ///< hash_spot_subset of the assigned spots
  std::uint64_t field_fp = 0;     ///< field::FieldFingerprint::hash
  std::uint64_t config_hash = 0;  ///< pixel-affecting raster config
  int x0 = 0;
  int y0 = 0;
  int width = 0;
  int height = 0;

  bool operator==(const TileKey&) const = default;
};

/// Hashes the spot subset `indices` of `spots` (raw position/intensity
/// bytes, ascending index order — exactly the order-independent identity the
/// lattice makes sufficient). Seeded with the subset size so a prefix subset
/// never aliases its extension.
[[nodiscard]] std::uint64_t hash_spot_subset(
    std::span<const SpotInstance> spots, std::span<const std::int64_t> indices);

class TileStore {
 public:
  struct Config {
    /// Global byte budget across all shards (pixel payload only).
    std::size_t max_bytes = 256u << 20;
    /// Lock shards; each runs its own LRU under max_bytes / shards.
    std::size_t shards = 8;
    /// Evicted / rejected / duplicate buffers are recycled here instead of
    /// freed (nullptr: just freed).
    render::FramebufferPool* recycle = nullptr;
    /// TEST SEAM: overrides the key -> bucket-index hash. Lookups always
    /// compare full keys, so a degenerate hash (e.g. constant) degrades
    /// performance but can never cause a stale or wrong tile to be served —
    /// tests/test_tile_store.cpp proves exactly that.
    std::function<std::uint64_t(const TileKey&)> index_hash{};
  };

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t inserts = 0;
    std::int64_t duplicates = 0;  ///< publishes that lost the first-writer race
    std::int64_t evictions = 0;
    std::int64_t rejects = 0;  ///< publishes refused (over budget / pinned full)
    std::int64_t entries = 0;
    std::uint64_t bytes = 0;         ///< live pixel bytes, <= budget_bytes always
    std::uint64_t budget_bytes = 0;  ///< Config::max_bytes
  };

  struct PublishOutcome {
    bool inserted = false;
    std::int64_t evicted = 0;  ///< entries evicted to make room
  };

 private:
  struct Entry {
    Entry(const TileKey& k, render::Framebuffer&& fb)
        : key(k), pixels(std::move(fb)) {}
    TileKey key;
    render::Framebuffer pixels;
    std::atomic<int> pins{0};
  };

 public:
  /// Pinned, immutable view of a cached tile. While alive, the entry cannot
  /// be evicted; pixels() is safe to read from any thread. Release is
  /// lock-free. The owning TileStore must outlive the Checkout.
  class Checkout {
   public:
    Checkout() = default;
    Checkout(Checkout&& other) noexcept
        : entry_(std::exchange(other.entry_, nullptr)) {}
    Checkout& operator=(Checkout&& other) noexcept {
      if (this != &other) {
        reset();
        entry_ = std::exchange(other.entry_, nullptr);
      }
      return *this;
    }
    Checkout(const Checkout&) = delete;
    Checkout& operator=(const Checkout&) = delete;
    ~Checkout() { reset(); }

    [[nodiscard]] const render::Framebuffer& pixels() const {
      return entry_->pixels;
    }
    explicit operator bool() const { return entry_ != nullptr; }

    /// Unpins early (idempotent). The release store pairs with the
    /// evictor's acquire load: reads of pixels() happen-before any
    /// destruction of the entry.
    void reset() {
      if (entry_ != nullptr) {
        entry_->pins.fetch_sub(1, std::memory_order_release);
        entry_ = nullptr;
      }
    }

   private:
    friend class TileStore;
    explicit Checkout(Entry* entry) : entry_(entry) {}
    Entry* entry_ = nullptr;
  };

  // (A default *argument* would need Config's member initializers before
  // the enclosing class is complete; a delegating constructor does not.)
  TileStore() : TileStore(Config{}) {}
  explicit TileStore(Config config);

  TileStore(const TileStore&) = delete;
  TileStore& operator=(const TileStore&) = delete;

  /// Looks `key` up: on a hit, pins the entry, refreshes its LRU position
  /// and returns a Checkout; on a miss returns an empty Checkout. Counts
  /// hits/misses.
  [[nodiscard]] Checkout probe(const TileKey& key);

  /// Pure lookup: no pin, no LRU refresh, no counter traffic. For "is it
  /// worth extracting this tile" decisions.
  [[nodiscard]] bool contains(const TileKey& key) const;

  /// Inserts a rendered tile, consuming `pixels` either way: kept on
  /// insert, recycled (or freed) on duplicate/reject. Evicts unpinned LRU
  /// entries of the shard as needed; never exceeds the byte budget and
  /// never evicts a pinned entry — when pinned entries leave no room the
  /// publish is rejected instead. `pixels` dimensions must equal the key's
  /// rectangle.
  PublishOutcome publish(const TileKey& key, render::Framebuffer&& pixels);

  /// Drops every unpinned entry (tests and bench phase resets). Pinned
  /// entries stay; their bytes remain accounted.
  void clear();

  [[nodiscard]] Stats stats() const;

 private:
  struct KeyIndexHash {
    const std::function<std::uint64_t(const TileKey&)>* fn;
    std::size_t operator()(const TileKey& key) const {
      return static_cast<std::size_t>((*fn)(key));
    }
  };

  struct Shard {
    mutable util::Mutex mutex;
    /// Front = most recently used. std::list: stable Entry addresses (pins
    /// are referenced lock-free by Checkouts) and O(1) LRU splice.
    std::list<Entry> lru DCSN_GUARDED_BY(mutex);
    std::unordered_map<TileKey, std::list<Entry>::iterator, KeyIndexHash>
        index DCSN_GUARDED_BY(mutex);
    std::uint64_t bytes DCSN_GUARDED_BY(mutex) = 0;

    explicit Shard(const std::function<std::uint64_t(const TileKey&)>* fn)
        : index(16, KeyIndexHash{fn}) {}
  };

  [[nodiscard]] Shard& shard_of(const TileKey& key);
  [[nodiscard]] const Shard& shard_of(const TileKey& key) const;
  /// Consumes `fb` into the recycle pool (or frees it).
  void discard(render::Framebuffer&& fb);

  Config config_;
  std::uint64_t shard_budget_ = 0;  ///< max_bytes / shards
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> inserts_{0};
  std::atomic<std::int64_t> duplicates_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> rejects_{0};
};

}  // namespace dcsn::core
