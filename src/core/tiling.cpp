#include "core/tiling.hpp"

#include <cmath>

#include "util/error.hpp"

namespace dcsn::core {

std::vector<Tile> make_tile_grid(int width, int height, int count) {
  DCSN_CHECK(width > 0 && height > 0, "texture dimensions must be positive");
  DCSN_CHECK(count >= 1, "tile count must be >= 1");
  // Near-square grid: cols * rows >= count with cols >= rows, trimmed so
  // every tile is non-empty.
  int cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(count))));
  int rows = (count + cols - 1) / cols;
  cols = (count + rows - 1) / rows;  // shrink cols if the last row is empty

  std::vector<Tile> tiles;
  tiles.reserve(static_cast<std::size_t>(count));
  int assigned = 0;
  for (int r = 0; r < rows && assigned < count; ++r) {
    // Tiles in the last row may be wider when count doesn't fill the grid.
    const int in_this_row = std::min(cols, count - assigned);
    const int y0 = r * height / rows;
    const int y1 = (r + 1) * height / rows;
    for (int c = 0; c < in_this_row; ++c) {
      const int x0 = c * width / in_this_row;
      const int x1 = (c + 1) * width / in_this_row;
      tiles.push_back({x0, y0, x1 - x0, y1 - y0});
      ++assigned;
    }
  }
  return tiles;
}

TileAssignment assign_spots_to_tiles(std::span<const SpotInstance> spots,
                                     const render::WorldToImage& mapping,
                                     double extent_px, std::span<const Tile> tiles) {
  DCSN_CHECK(extent_px >= 0.0, "spot extent must be non-negative");
  TileAssignment out;
  out.per_tile.resize(tiles.size());
  std::int64_t assignments = 0;
  for (std::size_t k = 0; k < spots.size(); ++k) {
    const auto [px, py] = mapping.map(spots[k].position);
    const double lo_x = px - extent_px;
    const double hi_x = px + extent_px;
    const double lo_y = py - extent_px;
    const double hi_y = py + extent_px;
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      const Tile& tile = tiles[t];
      if (hi_x < tile.x0 || lo_x > tile.x0 + tile.width) continue;
      if (hi_y < tile.y0 || lo_y > tile.y0 + tile.height) continue;
      out.per_tile[t].push_back(static_cast<std::int64_t>(k));
      ++assignments;
    }
  }
  out.duplicates = assignments - static_cast<std::int64_t>(spots.size());
  return out;
}

}  // namespace dcsn::core
