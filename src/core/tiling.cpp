#include "core/tiling.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "util/error.hpp"

namespace dcsn::core {

std::vector<Tile> make_tile_grid(int width, int height, int count) {
  DCSN_CHECK(width > 0 && height > 0, "texture dimensions must be positive");
  DCSN_CHECK(count >= 1, "tile count must be >= 1");
  // Near-square grid: cols * rows >= count with cols >= rows, trimmed so
  // every tile is non-empty.
  int cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(count))));
  int rows = (count + cols - 1) / cols;
  cols = (count + rows - 1) / rows;  // shrink cols if the last row is empty
  DCSN_CHECK(cols <= width && rows <= height,
             std::to_string(count) + " tiles need a " + std::to_string(cols) +
                 "x" + std::to_string(rows) + " grid, but the texture is only " +
                 std::to_string(width) + "x" + std::to_string(height) +
                 " px; use at most width*height tiles that fit the grid");

  std::vector<Tile> tiles;
  tiles.reserve(static_cast<std::size_t>(count));
  int assigned = 0;
  for (int r = 0; r < rows && assigned < count; ++r) {
    // Tiles in the last row may be wider when count doesn't fill the grid.
    const int in_this_row = std::min(cols, count - assigned);
    const int y0 = r * height / rows;
    const int y1 = (r + 1) * height / rows;
    for (int c = 0; c < in_this_row; ++c) {
      const int x0 = c * width / in_this_row;
      const int x1 = (c + 1) * width / in_this_row;
      tiles.push_back({x0, y0, x1 - x0, y1 - y0});
      ++assigned;
    }
  }
  return tiles;
}

namespace {

// One spot prepared for the kd-cut: pixel position plus its cost weight.
struct WeightedSpot {
  float px = 0.0f;
  float py = 0.0f;
  double cost = 1.0;
};

// Smallest split offset s in [lo, hi] such that the cost in columns [0, s)
// reaches `target`; `column(spot)` maps a spot to its column in [0, len).
// `total` is the span's cost sum (the caller already has it).
template <class ColumnOf>
int cost_balance_split(std::span<const WeightedSpot> spots, int len, double total,
                       double target, int lo, int hi, ColumnOf column) {
  if (total <= 0.0) return std::clamp((lo + hi) / 2, lo, hi);
  std::vector<double> cost(static_cast<std::size_t>(len), 0.0);
  for (const WeightedSpot& s : spots) {
    const int c = std::clamp(column(s), 0, len - 1);
    cost[static_cast<std::size_t>(c)] += s.cost;
  }
  double acc = 0.0;
  for (int s = 1; s < len; ++s) {
    acc += cost[static_cast<std::size_t>(s - 1)];
    if (s < lo) continue;
    if (acc >= target || s >= hi) return s;
  }
  return hi;
}

void kd_cut(int x0, int y0, int w, int h, int count, std::vector<WeightedSpot>& spots,
            std::size_t begin, std::size_t end, std::vector<Tile>& out) {
  if (count == 1) {
    out.push_back({x0, y0, w, h});
    return;
  }
  int n1 = count / 2;
  int n2 = count - n1;
  const double total_cost = std::accumulate(
      spots.begin() + static_cast<std::ptrdiff_t>(begin),
      spots.begin() + static_cast<std::ptrdiff_t>(end), 0.0,
      [](double acc, const WeightedSpot& s) { return acc + s.cost; });

  // Prefer cutting the longer side; fall back to the other when the tile
  // counts cannot fit (tiny textures), and finally to an area-proportional
  // count split, which is always feasible while area >= count.
  bool cut_x = w >= h;
  bool feasible = false;
  int split = 0;
  for (int attempt = 0; attempt < 2 && !feasible; ++attempt, cut_x = !cut_x) {
    const int len = cut_x ? w : h;
    const int other = cut_x ? h : w;
    const int lo = std::max(1, (n1 + other - 1) / other);
    const int hi = len - std::max(1, (n2 + other - 1) / other);
    if (lo > hi) continue;
    feasible = true;
    const double target = total_cost * static_cast<double>(n1) / count;
    const std::span<const WeightedSpot> view{spots.data() + begin, end - begin};
    if (cut_x) {
      split = cost_balance_split(view, len, total_cost, target, lo, hi,
                                 [&](const WeightedSpot& s) {
                                   return static_cast<int>(std::floor(s.px)) - x0;
                                 });
    } else {
      split = cost_balance_split(view, len, total_cost, target, lo, hi,
                                 [&](const WeightedSpot& s) {
                                   return static_cast<int>(std::floor(s.py)) - y0;
                                 });
    }
  }
  cut_x = !cut_x;  // undo the loop's final flip
  if (!feasible) {
    // Area-proportional fallback: split the longer side in half and hand
    // each half as many tiles as its area can host.
    cut_x = w >= h;
    const int len = cut_x ? w : h;
    const int other = cut_x ? h : w;
    split = std::clamp(len / 2, 1, len - 1);
    const int left_cap = split * other;
    const int right_cap = (len - split) * other;
    n1 = std::clamp(count / 2, count - right_cap, left_cap);
    n2 = count - n1;
  }

  const float boundary =
      static_cast<float>(cut_x ? x0 + split : y0 + split);
  const auto mid_it = std::partition(
      spots.begin() + static_cast<std::ptrdiff_t>(begin),
      spots.begin() + static_cast<std::ptrdiff_t>(end),
      [&](const WeightedSpot& s) { return (cut_x ? s.px : s.py) < boundary; });
  const auto mid = static_cast<std::size_t>(mid_it - spots.begin());
  if (cut_x) {
    kd_cut(x0, y0, split, h, n1, spots, begin, mid, out);
    kd_cut(x0 + split, y0, w - split, h, n2, spots, mid, end, out);
  } else {
    kd_cut(x0, y0, w, split, n1, spots, begin, mid, out);
    kd_cut(x0, y0 + split, w, h - split, n2, spots, mid, end, out);
  }
}

}  // namespace

std::vector<Tile> make_balanced_tiles(int width, int height, int count,
                                      std::span<const SpotInstance> spots,
                                      const render::WorldToImage& mapping,
                                      std::span<const double> spot_costs) {
  DCSN_CHECK(width > 0 && height > 0, "texture dimensions must be positive");
  DCSN_CHECK(count >= 1, "tile count must be >= 1");
  DCSN_CHECK(static_cast<std::int64_t>(width) * height >= count,
             std::to_string(count) + " tiles cannot fit a " + std::to_string(width) +
                 "x" + std::to_string(height) + " px texture");
  DCSN_CHECK(spot_costs.empty() || spot_costs.size() == spots.size(),
             "spot_costs must be empty or one cost per spot");

  std::vector<WeightedSpot> weighted;
  weighted.reserve(spots.size());
  for (std::size_t k = 0; k < spots.size(); ++k) {
    const auto [px, py] = mapping.map(spots[k].position);
    weighted.push_back({static_cast<float>(px), static_cast<float>(py),
                        spot_costs.empty() ? 1.0 : spot_costs[k]});
  }

  std::vector<Tile> tiles;
  tiles.reserve(static_cast<std::size_t>(count));
  kd_cut(0, 0, width, height, count, weighted, 0, weighted.size(), tiles);
  return tiles;
}

TileAssignment assign_spots_to_tiles(std::span<const SpotInstance> spots,
                                     const render::WorldToImage& mapping,
                                     double extent_px, std::span<const Tile> tiles) {
  DCSN_CHECK(extent_px >= 0.0, "spot extent must be non-negative");
  // The tiles partition a rectangle; anything outside it cannot be rendered,
  // so a spot is allowed to match no tile only when its extent misses the
  // union entirely.
  int union_x0 = tiles.empty() ? 0 : tiles[0].x0;
  int union_y0 = tiles.empty() ? 0 : tiles[0].y0;
  int union_x1 = union_x0;
  int union_y1 = union_y0;
  for (const Tile& tile : tiles) {
    union_x0 = std::min(union_x0, tile.x0);
    union_y0 = std::min(union_y0, tile.y0);
    union_x1 = std::max(union_x1, tile.x0 + tile.width);
    union_y1 = std::max(union_y1, tile.y0 + tile.height);
  }

  TileAssignment out;
  out.per_tile.resize(tiles.size());
  std::int64_t assignments = 0;
  for (std::size_t k = 0; k < spots.size(); ++k) {
    const auto [px, py] = mapping.map(spots[k].position);
    const double lo_x = px - extent_px;
    const double hi_x = px + extent_px;
    const double lo_y = py - extent_px;
    const double hi_y = py + extent_px;
    bool matched = false;
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      const Tile& tile = tiles[t];
      // A tile covers the half-open pixel rect [x0, x0+width) x [y0,
      // y0+height): the upper bound is exclusive, so a spot whose extent
      // only touches the right/bottom edge belongs to the neighbor alone.
      if (hi_x < tile.x0 || lo_x >= tile.x0 + tile.width) continue;
      if (hi_y < tile.y0 || lo_y >= tile.y0 + tile.height) continue;
      out.per_tile[t].push_back(static_cast<std::int64_t>(k));
      ++assignments;
      matched = true;
    }
    const bool outside_union = hi_x < union_x0 || lo_x >= union_x1 ||
                               hi_y < union_y0 || lo_y >= union_y1;
    DCSN_CHECK(matched || outside_union,
               "spot extent overlaps the tiled texture but landed in no tile");
  }
  out.duplicates = assignments - static_cast<std::int64_t>(spots.size());
  return out;
}

}  // namespace dcsn::core
