// Line Integral Convolution (Cabral & Leedom, SIGGRAPH '93) — the other
// dense texture-based flow visualization of the era and the natural
// comparator for spot noise (LIC eventually displaced it).
//
// Where spot noise is *object order* (each spot splats into the texture —
// which is what made the divide-and-conquer parallelization natural), LIC
// is *image order*: each output pixel convolves an input noise texture
// along the streamline through that pixel. Pixels are independent, so LIC
// parallelizes trivially over rows with OpenMP; the comparison bench puts
// the two approaches' cost structures side by side.
#pragma once

#include <cstdint>

#include "field/vector_field.hpp"
#include "render/framebuffer.hpp"

namespace dcsn::core {

struct LicConfig {
  int width = 512;
  int height = 512;
  /// Streamline half-length of the convolution, in output pixels.
  double kernel_half_length_px = 15.0;
  /// Integration step along the streamline, in output pixels.
  double step_px = 1.0;
  std::uint64_t noise_seed = 42;
  int threads = 0;  ///< 0 = all available
};

/// White-noise input texture for LIC (one value per output pixel).
[[nodiscard]] render::Framebuffer make_lic_noise(int width, int height,
                                                 std::uint64_t seed);

/// Convolves `noise` along streamlines of `field` with a box kernel.
/// `noise` must match the configured output size.
[[nodiscard]] render::Framebuffer lic(const field::VectorField& f,
                                      const render::Framebuffer& noise,
                                      const LicConfig& config);

}  // namespace dcsn::core
