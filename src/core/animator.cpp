#include "core/animator.hpp"

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace dcsn::core {

Animator::Animator(AnimatorConfig config, DncSynthesizer& synthesizer,
                   particles::ParticleSystem& particles, ReadData read_data)
    : config_(config),
      synthesizer_(synthesizer),
      particles_(particles),
      read_data_(std::move(read_data)) {
  DCSN_CHECK(config_.advect_radius_fraction > 0.0,
             "advection step must be positive");
  DCSN_CHECK(config_.high_pass_radius >= 0, "filter radius must be non-negative");
  DCSN_CHECK(static_cast<bool>(read_data_), "read_data callback required");
  DCSN_CHECK(!config_.incremental || synthesizer_.dnc_config().tiled,
             "incremental animation requires a tiled engine (per-tile retention)");
}

Animator::~Animator() {
  if (filtered_) {
    // Scratch returns to the engine's shared framebuffer pool.
    synthesizer_.runtime().framebuffers().release(std::move(*filtered_));
  }
}

AnimationFrame Animator::step() {
  const util::Stopwatch total;
  AnimationFrame out;

  // Step 1: read the data set.
  util::Stopwatch watch;
  const field::VectorField& f = read_data_(frame_);
  out.read_seconds = watch.seconds();

  // Step 2: advect particles. The time step moves the fastest particle a
  // fixed fraction of a spot radius, so texture motion is smooth regardless
  // of the field's units.
  watch.restart();
  const SynthesisConfig& sc = synthesizer_.config();
  const double world_per_px =
      0.5 * (f.domain().width() / sc.texture_width +
             f.domain().height() / sc.texture_height);
  const double max_mag = f.max_magnitude();
  const double dt = max_mag > 0.0 ? config_.advect_radius_fraction *
                                        sc.spot_radius_px * world_per_px / max_mag
                                  : 0.0;
  particles_.advance(f, dt);
  out.advect_seconds = watch.seconds();

  // Step 3: generate the texture — incrementally when the temporal cache
  // can prove which tiles changed, fully otherwise.
  std::vector<SpotInstance> spots = spots_from_particles(particles_);
  if (config_.incremental) {
    const SynthesisCache::Decision d = cache_.plan(synthesizer_, f, spots);
    out.synthesis =
        synthesizer_.synthesize(f, spots, d.incremental ? &d.plan : nullptr);
    cache_.commit(synthesizer_, f, std::move(spots));
  } else {
    out.synthesis = synthesizer_.synthesize(f, spots);
  }

  // Optional spot filtering.
  watch.restart();
  if (config_.high_pass_radius > 0) {
    filtered_ = high_pass(synthesizer_.texture(), config_.high_pass_radius);
    if (config_.normalize) normalize_contrast(*filtered_);
    out.texture = &*filtered_;
  } else if (config_.normalize) {
    filtered_ = synthesizer_.texture();
    normalize_contrast(*filtered_);
    out.texture = &*filtered_;
  } else {
    out.texture = &synthesizer_.texture();
  }
  out.filter_seconds = watch.seconds();

  ++frame_;
  out.total_seconds = total.seconds();
  return out;
}

}  // namespace dcsn::core
