// The virtual service clock: deterministic time for deadlines and backoff.
//
// Retry backoff, circuit-breaker cooldowns and admission deadlines are all
// *time* policies, but wall time is the one input the PR 4 determinism
// machinery cannot reproduce — two runs of the same fault schedule would
// retry at different instants and diverge. VirtualServiceClock replaces the
// wall for those policies: a monotone atomic nanosecond counter that only
// moves when something moves it. The SynthesisService advances it
// discrete-event style — when every runnable session is blocked on a
// not-before instant (a backoff retry, a breaker cooldown), an idle driver
// jumps the clock straight to the earliest such instant — so a faulted run
// consumes exactly the same sequence of timestamps every time, and
// bench_robustness can demand that two runs of one fault seed produce
// identical retry/timeout/degraded counters.
//
// Services without a virtual clock fall back to wall time (util::Stopwatch)
// for these policies; that is the right default for production and the
// wrong one for replay, which is why the clock is caller-injected.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>

namespace dcsn::core {

class VirtualServiceClock {
 public:
  VirtualServiceClock() = default;
  VirtualServiceClock(const VirtualServiceClock&) = delete;
  VirtualServiceClock& operator=(const VirtualServiceClock&) = delete;

  [[nodiscard]] double now() const {
    return static_cast<double>(ns_.load(std::memory_order_acquire)) * 1e-9;
  }

  /// Moves the clock forward by `seconds` (negative amounts are ignored).
  /// Rounds up: any positive amount advances by at least one nanosecond, so
  /// a caller looping on advance() always makes progress.
  void advance(double seconds) {
    if (seconds > 0.0) {
      ns_.fetch_add(ns_after(seconds), std::memory_order_acq_rel);
    }
  }

  /// Moves the clock forward to at least `seconds` since epoch. Monotone:
  /// concurrent advances race benignly (the clock never goes backwards).
  ///
  /// The target rounds *up* one nanosecond past `seconds`: after
  /// advance_to(t), now() compares >= t in double arithmetic. Truncating
  /// instead (the obvious int64(t * 1e9)) can land the clock a nanosecond
  /// short of an instant that is not an exact nanosecond multiple — and a
  /// driver doing discrete-event hops to a parked deadline would then
  /// re-derive the same wake-up instant, re-advance to the same truncated
  /// tick, and spin forever without moving time.
  void advance_to(double seconds) {
    const std::int64_t target = ns_after(seconds);
    std::int64_t current = ns_.load(std::memory_order_acquire);
    while (current < target &&
           !ns_.compare_exchange_weak(current, target,
                                      std::memory_order_acq_rel)) {
    }
  }

 private:
  /// Nanosecond tick strictly past `seconds`: ceil plus a one-tick guard
  /// against the product rounding, so tick * 1e-9 >= seconds always holds
  /// for the magnitudes a virtual run reaches.
  [[nodiscard]] static std::int64_t ns_after(double seconds) {
    return static_cast<std::int64_t>(std::ceil(seconds * 1e9)) + 1;
  }

  std::atomic<std::int64_t> ns_{0};
};

}  // namespace dcsn::core
