#include "core/synthesis_cache.hpp"

#include <algorithm>
#include <utility>

#include "core/spot_geometry.hpp"

namespace dcsn::core {

SynthesisCache::Decision SynthesisCache::plan(const DncSynthesizer& engine,
                                              const field::VectorField& f,
                                              std::span<const SpotInstance> spots) {
  Decision d;
  if (!engine.dnc_config().tiled) return d;  // nothing to retain per tile
  if (!valid_) {
    planned_streak_ = 0;
    return d;
  }
  // Field guard: a swapped field object invalidates on identity, and a
  // field whose content fingerprint moved (domain, extremes or any grid
  // sample — raw bytes, exact) changes spot geometry everywhere. The
  // fingerprint is the same one TileStore keys tiles by, so the two caches
  // agree on what "same field" means. A non-finite fingerprint is rejected
  // outright: NaN content has stable hash bytes but no trustworthy
  // identity.
  const field::FieldFingerprint fp = field::fingerprint_field(f);
  if (&f != field_ || !fp.finite || fp != fingerprint_) {
    valid_ = false;
    planned_streak_ = 0;
    return d;
  }
  // Serial guard: the engine rendered a frame this cache did not commit
  // (another driver, or an abandoned frame) — the retained texture regions
  // are not last-committed-frame pixels any more.
  if (engine.frame_serial() != engine_serial_) {
    valid_ = false;
    planned_streak_ = 0;
    return d;
  }
  // Grid guard: reuse is expressed per tile of the snapshot's grid.
  if (!std::ranges::equal(engine.tiles(), tiles_)) {
    valid_ = false;
    planned_streak_ = 0;
    return d;
  }
  // Rebalance budget: planned frames freeze a kCostBalanced grid, so force
  // one full frame per interval to let the kd-cut follow the population.
  if (engine.dnc_config().tile_strategy == TileStrategy::kCostBalanced &&
      rebalance_interval > 0 && planned_streak_ >= rebalance_interval) {
    planned_streak_ = 0;
    return d;  // full frame; commit() re-snapshots the (possibly new) grid
  }

  // The same mapping + conservative extent the engine's preprocessing uses,
  // so "clean" below means "identical per-tile assignment list".
  const SpotGeometryGenerator generator(engine.config(), f);
  d.delta = diff_spots(spots_, spots);
  d.plan.tile_dirty = dirty_tiles(d.delta, spots_, spots, generator.mapping(),
                                  generator.max_extent_px(), tiles_);
  d.incremental = true;
  ++planned_streak_;
  return d;
}

void SynthesisCache::commit(const DncSynthesizer& engine,
                            const field::VectorField& f,
                            std::vector<SpotInstance> spots) {
  spots_ = std::move(spots);
  tiles_.assign(engine.tiles().begin(), engine.tiles().end());
  field_ = &f;
  fingerprint_ = field::fingerprint_field(f);
  engine_serial_ = engine.frame_serial();
  valid_ = engine.dnc_config().tiled;
}

}  // namespace dcsn::core
