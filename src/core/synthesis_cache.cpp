#include "core/synthesis_cache.hpp"

#include <algorithm>
#include <utility>

#include "core/spot_geometry.hpp"

namespace dcsn::core {

std::array<field::Vec2, SynthesisCache::kFieldProbes> SynthesisCache::probe_field(
    const field::VectorField& f) {
  // Fixed fractional positions, deliberately irregular so axis-aligned
  // structure in the data cannot make distinct fields alias on every probe.
  static constexpr double kAt[kFieldProbes][2] = {
      {0.13, 0.29}, {0.71, 0.17}, {0.41, 0.83}, {0.89, 0.61},
      {0.07, 0.93}, {0.53, 0.47}, {0.31, 0.11}, {0.97, 0.37}};
  const field::Rect d = f.domain();
  std::array<field::Vec2, kFieldProbes> out;
  for (std::size_t i = 0; i < kFieldProbes; ++i) {
    out[i] = f.sample({d.x0 + kAt[i][0] * d.width(), d.y0 + kAt[i][1] * d.height()});
  }
  return out;
}

SynthesisCache::Decision SynthesisCache::plan(const DncSynthesizer& engine,
                                              const field::VectorField& f,
                                              std::span<const SpotInstance> spots) {
  Decision d;
  if (!engine.dnc_config().tiled) return d;  // nothing to retain per tile
  if (!valid_) {
    planned_streak_ = 0;
    return d;
  }
  // Field probes: a swapped field object, or one whose domain, extremes or
  // probed vector values moved, changes spot geometry everywhere. An exact
  // Vec2 comparison on purpose — and a NaN probe never equals itself, so a
  // poisoned field conservatively renders full frames.
  if (&f != field_ || !(f.domain() == domain_) ||
      f.max_magnitude() != max_magnitude_ || probe_field(f) != probes_) {
    valid_ = false;
    planned_streak_ = 0;
    return d;
  }
  // Serial guard: the engine rendered a frame this cache did not commit
  // (another driver, or an abandoned frame) — the retained texture regions
  // are not last-committed-frame pixels any more.
  if (engine.frame_serial() != engine_serial_) {
    valid_ = false;
    planned_streak_ = 0;
    return d;
  }
  // Grid guard: reuse is expressed per tile of the snapshot's grid.
  if (!std::ranges::equal(engine.tiles(), tiles_)) {
    valid_ = false;
    planned_streak_ = 0;
    return d;
  }
  // Rebalance budget: planned frames freeze a kCostBalanced grid, so force
  // one full frame per interval to let the kd-cut follow the population.
  if (engine.dnc_config().tile_strategy == TileStrategy::kCostBalanced &&
      rebalance_interval > 0 && planned_streak_ >= rebalance_interval) {
    planned_streak_ = 0;
    return d;  // full frame; commit() re-snapshots the (possibly new) grid
  }

  // The same mapping + conservative extent the engine's preprocessing uses,
  // so "clean" below means "identical per-tile assignment list".
  const SpotGeometryGenerator generator(engine.config(), f);
  d.delta = diff_spots(spots_, spots);
  d.plan.tile_dirty = dirty_tiles(d.delta, spots_, spots, generator.mapping(),
                                  generator.max_extent_px(), tiles_);
  d.incremental = true;
  ++planned_streak_;
  return d;
}

void SynthesisCache::commit(const DncSynthesizer& engine,
                            const field::VectorField& f,
                            std::vector<SpotInstance> spots) {
  spots_ = std::move(spots);
  tiles_.assign(engine.tiles().begin(), engine.tiles().end());
  field_ = &f;
  domain_ = f.domain();
  max_magnitude_ = f.max_magnitude();
  probes_ = probe_field(f);
  engine_serial_ = engine.frame_serial();
  valid_ = engine.dnc_config().tiled;
}

}  // namespace dcsn::core
