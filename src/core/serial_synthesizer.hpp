// The all-software baseline synthesizer.
//
// This is spot noise as published in 1991 and as run before this paper made
// it interactive: generate every spot, scan-convert and blend on the CPU,
// no graphics subsystem involved. It doubles as the paper's §4 alternative
// ("if processors are sufficiently fast ... bypassing the graphics
// subsystem altogether") when run with threads > 1, where spots are
// processed into worker-private framebuffers that are summed at the end —
// valid because lattice-snapped addition commutes exactly.
//
// The threads > 1 path borrows its workers from the shared core::Runtime
// (the same pool the divide-and-conquer engine multiplexes) and its
// worker-private partials from the runtime's framebuffer pool, instead of
// opening a private OpenMP region: one pool serves every synthesis strategy
// in the process, and the path stays visible to ThreadSanitizer (libgomp's
// barriers are not instrumented).
//
// It is also the reference implementation the divide-and-conquer engine is
// tested against: for the same spots both must produce the same texture
// (bit-identical — see tests/test_determinism.cpp).
#pragma once

#include <memory>

#include "core/runtime.hpp"
#include "core/spot_geometry.hpp"
#include "core/spot_params.hpp"
#include "render/framebuffer.hpp"
#include "render/rasterizer.hpp"

namespace dcsn::core {

struct SerialStats {
  double total_seconds = 0.0;
  double genP_seconds = 0.0;  ///< geometry generation
  double genT_seconds = 0.0;  ///< scan conversion + blending
  std::int64_t spots = 0;
  std::int64_t vertices = 0;
  render::RasterStats raster;
};

class SerialSynthesizer {
 public:
  /// Borrows from the process-global Runtime for threads > 1.
  explicit SerialSynthesizer(SynthesisConfig config);
  SerialSynthesizer(SynthesisConfig config, Runtime& runtime);

  /// Renders `spots` over `f` into the internal texture and returns stats.
  /// threads == 1 reproduces the historical serial path bit-for-bit for a
  /// fixed seed; threads > 1 parallelizes over the runtime's worker pool
  /// (the calling thread always participates, so progress never depends on
  /// pool availability).
  SerialStats synthesize(const field::VectorField& f,
                         std::span<const SpotInstance> spots, int threads = 1);

  [[nodiscard]] const render::Framebuffer& texture() const { return texture_; }
  [[nodiscard]] const SynthesisConfig& config() const { return config_; }
  [[nodiscard]] Runtime& runtime() const { return *runtime_; }

  /// Intensity scale that keeps texture standard deviation roughly
  /// independent of spot count: amplitudes add in quadrature, so scale by
  /// 1/sqrt(expected spots overlapping a pixel).
  [[nodiscard]] static double natural_intensity(const SynthesisConfig& config);

 private:
  SynthesisConfig config_;
  Runtime* runtime_;
  render::Framebuffer texture_;
  std::shared_ptr<const render::SpotProfile> profile_;
};

}  // namespace dcsn::core
