// The all-software baseline synthesizer.
//
// This is spot noise as published in 1991 and as run before this paper made
// it interactive: generate every spot, scan-convert and blend on the CPU,
// no graphics subsystem involved. It doubles as the paper's §4 alternative
// ("if processors are sufficiently fast ... bypassing the graphics
// subsystem altogether") when run with threads > 1, where spots are
// processed in OpenMP worker-private framebuffers that are summed at the
// end — valid because addition commutes.
//
// It is also the reference implementation the divide-and-conquer engine is
// tested against: for the same spots both must produce the same texture (up
// to float summation order).
#pragma once

#include <memory>

#include "core/spot_geometry.hpp"
#include "core/spot_params.hpp"
#include "render/framebuffer.hpp"
#include "render/rasterizer.hpp"

namespace dcsn::core {

struct SerialStats {
  double total_seconds = 0.0;
  double genP_seconds = 0.0;  ///< geometry generation
  double genT_seconds = 0.0;  ///< scan conversion + blending
  std::int64_t spots = 0;
  std::int64_t vertices = 0;
  render::RasterStats raster;
};

class SerialSynthesizer {
 public:
  explicit SerialSynthesizer(SynthesisConfig config);

  /// Renders `spots` over `f` into the internal texture and returns stats.
  /// threads == 1 reproduces the historical serial path bit-for-bit for a
  /// fixed seed; threads > 1 parallelizes with OpenMP.
  SerialStats synthesize(const field::VectorField& f,
                         std::span<const SpotInstance> spots, int threads = 1);

  [[nodiscard]] const render::Framebuffer& texture() const { return texture_; }
  [[nodiscard]] const SynthesisConfig& config() const { return config_; }

  /// Intensity scale that keeps texture standard deviation roughly
  /// independent of spot count: amplitudes add in quadrature, so scale by
  /// 1/sqrt(expected spots overlapping a pixel).
  [[nodiscard]] static double natural_intensity(const SynthesisConfig& config);

 private:
  SynthesisConfig config_;
  render::Framebuffer texture_;
  std::shared_ptr<const render::SpotProfile> profile_;
};

}  // namespace dcsn::core
