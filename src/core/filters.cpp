#include "core/filters.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "render/image.hpp"
#include "util/error.hpp"

namespace dcsn::core {

namespace {

// One horizontal box-blur pass from src into dst (running-sum, O(1) per px).
void blur_rows(util::Span2D<const float> src, util::Span2D<float> dst, int radius) {
  const int w = src.width();
  const int h = src.height();
  const float inv = 1.0f / static_cast<float>(2 * radius + 1);
  for (int y = 0; y < h; ++y) {
    const auto in = src.row(y);
    auto out = dst.row(y);
    float sum = 0.0f;
    // Border-clamped initial window around x = 0.
    for (int k = -radius; k <= radius; ++k)
      sum += in[static_cast<std::size_t>(std::clamp(k, 0, w - 1))];
    for (int x = 0; x < w; ++x) {
      out[static_cast<std::size_t>(x)] = sum * inv;
      const int leaving = std::clamp(x - radius, 0, w - 1);
      const int entering = std::clamp(x + radius + 1, 0, w - 1);
      sum += in[static_cast<std::size_t>(entering)] -
             in[static_cast<std::size_t>(leaving)];
    }
  }
}

// Transpose so the vertical pass can reuse blur_rows on contiguous rows.
render::Framebuffer transpose(const render::Framebuffer& src) {
  render::Framebuffer dst(src.height(), src.width());
  const auto in = src.pixels();
  auto out = dst.pixels();
#pragma omp parallel for schedule(static)
  for (int y = 0; y < in.height(); ++y)
    for (int x = 0; x < in.width(); ++x) out(y, x) = in(x, y);
  return dst;
}

}  // namespace

render::Framebuffer box_blur(const render::Framebuffer& texture, int radius) {
  DCSN_CHECK(radius >= 0, "blur radius must be non-negative");
  if (radius == 0) return texture;
  render::Framebuffer tmp(texture.width(), texture.height());
  blur_rows(texture.pixels(), tmp.pixels(), radius);
  render::Framebuffer tmp_t = transpose(tmp);
  render::Framebuffer out_t(tmp_t.width(), tmp_t.height());
  blur_rows(tmp_t.pixels(), out_t.pixels(), radius);
  return transpose(out_t);
}

render::Framebuffer high_pass(const render::Framebuffer& texture, int radius) {
  render::Framebuffer low = box_blur(texture, radius);
  render::Framebuffer out(texture.width(), texture.height());
  const auto in = texture.pixels();
  const auto lo = low.pixels();
  auto dst = out.pixels();
#pragma omp parallel for schedule(static)
  for (int y = 0; y < in.height(); ++y)
    for (int x = 0; x < in.width(); ++x) dst(x, y) = in(x, y) - lo(x, y);
  return out;
}

void normalize_contrast(render::Framebuffer& texture, double sigmas) {
  DCSN_CHECK(sigmas > 0.0, "sigma range must be positive");
  const double mean = texture.mean();
  const double sigma = render::texture_stddev(texture);
  if (sigma <= 0.0) return;
  const auto scale = static_cast<float>(1.0 / (sigmas * sigma));
  const auto offset = static_cast<float>(mean);
  auto px = texture.pixels();
#pragma omp parallel for schedule(static)
  for (int y = 0; y < px.height(); ++y)
    for (int x = 0; x < px.width(); ++x) px(x, y) = (px(x, y) - offset) * scale;
}

void equalize_histogram(render::Framebuffer& texture) {
  const auto [lo, hi] = texture.min_max();
  if (!(hi > lo)) return;
  constexpr int kBins = 256;
  std::array<std::int64_t, kBins> histogram{};
  auto px = texture.pixels();
  const float scale = static_cast<float>(kBins - 1) / (hi - lo);
  for (int y = 0; y < px.height(); ++y)
    for (int x = 0; x < px.width(); ++x) {
      const int bin = static_cast<int>((px(x, y) - lo) * scale);
      ++histogram[static_cast<std::size_t>(std::clamp(bin, 0, kBins - 1))];
    }
  std::array<double, kBins> cdf{};
  double acc = 0.0;
  const double total = static_cast<double>(texture.pixel_count());
  for (int b = 0; b < kBins; ++b) {
    acc += static_cast<double>(histogram[static_cast<std::size_t>(b)]);
    cdf[static_cast<std::size_t>(b)] = acc / total;
  }
#pragma omp parallel for schedule(static)
  for (int y = 0; y < px.height(); ++y)
    for (int x = 0; x < px.width(); ++x) {
      const int bin = static_cast<int>((px(x, y) - lo) * scale);
      const double c = cdf[static_cast<std::size_t>(std::clamp(bin, 0, kBins - 1))];
      px(x, y) = static_cast<float>(c * 2.0 - 1.0);
    }
}

}  // namespace dcsn::core
