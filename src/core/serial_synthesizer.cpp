#include "core/serial_synthesizer.hpp"

#include "util/omp_compat.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace dcsn::core {

SerialSynthesizer::SerialSynthesizer(SynthesisConfig config)
    : config_(config),
      texture_(config.texture_width, config.texture_height),
      profile_(render::SpotProfile::make_shared(config.profile_shape,
                                                config.profile_resolution)) {}

double SerialSynthesizer::natural_intensity(const SynthesisConfig& config) {
  const double texture_area =
      static_cast<double>(config.texture_width) * config.texture_height;
  const double spot_area =
      config.spot_radius_px * config.spot_radius_px * 3.141592653589793;
  const double overlap =
      std::max(1.0, static_cast<double>(config.spot_count) * spot_area / texture_area);
  return 1.0 / std::sqrt(overlap);
}

SerialStats SerialSynthesizer::synthesize(const field::VectorField& f,
                                          std::span<const SpotInstance> spots,
                                          int threads) {
  DCSN_CHECK(threads >= 1, "thread count must be >= 1");
  const util::Stopwatch total;
  SerialStats stats;
  stats.spots = static_cast<std::int64_t>(spots.size());

  const SpotGeometryGenerator generator(config_, f);
  texture_.clear();

  constexpr std::int64_t kChunk = 64;

  if (threads == 1) {
    const render::RasterTarget target{texture_.pixels(), 0, 0};
    render::CommandBuffer buffer;
    buffer.reserve(kChunk, static_cast<std::size_t>(config_.vertices_per_spot()));
    util::TimeAccumulator genP, genT;
    for (std::size_t begin = 0; begin < spots.size(); begin += kChunk) {
      const std::size_t end = std::min(spots.size(), begin + kChunk);
      buffer.clear();
      {
        const util::ScopedTimer t(genP);
        for (std::size_t k = begin; k < end; ++k) generator.generate(spots[k], buffer);
      }
      {
        const util::ScopedTimer t(genT);
        render::rasterize_buffer(target, buffer, *profile_, render::BlendMode::kAdditive,
                                 stats.raster);
      }
      stats.vertices += static_cast<std::int64_t>(buffer.vertex_count());
    }
    stats.genP_seconds = genP.seconds();
    stats.genT_seconds = genT.seconds();
  } else {
    // Worker-private framebuffers, reduced by addition afterwards.
    std::vector<render::Framebuffer> partials;
    partials.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
      partials.emplace_back(config_.texture_width, config_.texture_height);
    std::vector<double> genP(static_cast<std::size_t>(threads), 0.0);
    std::vector<double> genT(static_cast<std::size_t>(threads), 0.0);
    std::vector<render::RasterStats> raster(static_cast<std::size_t>(threads));
    std::vector<std::int64_t> vertices(static_cast<std::size_t>(threads), 0);

    const auto n = static_cast<std::int64_t>(spots.size());
#pragma omp parallel num_threads(threads)
    {
      const auto tid = static_cast<std::size_t>(omp_get_thread_num());
      const render::RasterTarget target{partials[tid].pixels(), 0, 0};
      render::CommandBuffer buffer;
      buffer.reserve(kChunk, static_cast<std::size_t>(config_.vertices_per_spot()));
#pragma omp for schedule(dynamic, 1)
      for (std::int64_t chunk = 0; chunk < (n + kChunk - 1) / kChunk; ++chunk) {
        const std::int64_t begin = chunk * kChunk;
        const std::int64_t end = std::min(n, begin + kChunk);
        buffer.clear();
        util::Stopwatch watch;
        for (std::int64_t k = begin; k < end; ++k)
          generator.generate(spots[static_cast<std::size_t>(k)], buffer);
        genP[tid] += watch.seconds();
        watch.restart();
        render::rasterize_buffer(target, buffer, *profile_,
                                 render::BlendMode::kAdditive, raster[tid]);
        genT[tid] += watch.seconds();
        vertices[tid] += static_cast<std::int64_t>(buffer.vertex_count());
      }
    }
    for (int t = 0; t < threads; ++t) {
      const auto ts = static_cast<std::size_t>(t);
      texture_.accumulate(partials[ts]);
      stats.genP_seconds += genP[ts];
      stats.genT_seconds += genT[ts];
      stats.raster += raster[ts];
      stats.vertices += vertices[ts];
    }
  }

  stats.total_seconds = total.seconds();
  return stats;
}

}  // namespace dcsn::core
