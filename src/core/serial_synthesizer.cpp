#include "core/serial_synthesizer.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"
#include "util/threading.hpp"

namespace dcsn::core {

namespace {

constexpr std::int64_t kChunk = 64;

// Cooperative parallel-reduction job: participants (the caller + runtime
// pool workers, capped at `max_participants`) claim spot chunks, rasterize
// into a private pooled framebuffer, and fold their partial into the shared
// texture on leave. Heap-owned via shared_ptr because pool workers may call
// serve() from a stale registry snapshot after the frame finished — a
// closed job refuses the join before touching any frame state.
struct PartialReduceJob final : Runtime::SharedJob {
  PartialReduceJob(Runtime& rt, const SynthesisConfig& config,
                   const SpotGeometryGenerator& generator,
                   const render::SpotProfile& profile,
                   std::span<const SpotInstance> spots,
                   render::Framebuffer& texture, int max_participants)
      : runtime(rt),
        config(config),
        generator(generator),
        profile(profile),
        spots(spots),
        texture(texture),
        max_participants(max_participants),
        counter(static_cast<std::int64_t>(spots.size()), kChunk) {}

  bool serve() override {
    {
      util::MutexLock lock(mutex);
      if (closed || active >= max_participants) return false;
      ++active;
    }
    const bool worked = work();
    {
      util::MutexLock lock(mutex);
      --active;
    }
    cv.notify_all();
    return worked;
  }

  bool work() {
    render::Framebuffer partial =
        runtime.framebuffers().acquire(texture.width(), texture.height());
    const render::RasterTarget target{partial.pixels(), 0, 0};
    render::CommandBuffer buffer;
    buffer.reserve(kChunk, static_cast<std::size_t>(config.vertices_per_spot()));
    double genP = 0.0, genT = 0.0;
    std::int64_t verts = 0;
    render::RasterStats raster;
    bool worked = false;
    try {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) break;
        const auto range = counter.claim();
        if (range.empty()) break;
        worked = true;
        buffer.clear();
        util::ThreadCpuStopwatch watch;
        for (std::int64_t k = range.begin; k < range.end; ++k) {
          generator.generate(spots[static_cast<std::size_t>(k)], buffer);
        }
        genP += watch.seconds();
        watch.restart();
        render::rasterize_buffer(target, buffer, profile,
                                 render::BlendMode::kAdditive, raster);
        genT += watch.seconds();
        verts += static_cast<std::int64_t>(buffer.vertex_count());
      }
    } catch (...) {
      util::MutexLock lock(mutex);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
    {
      util::MutexLock lock(mutex);
      // Lattice-exact accumulation commutes, so fold order cannot show in
      // the pixels — any participant may merge at any time.
      if (!failed.load(std::memory_order_relaxed)) texture.accumulate(partial);
      stats.genP_seconds += genP;
      stats.genT_seconds += genT;
      stats.vertices += verts;
      stats.raster += raster;
    }
    runtime.framebuffers().release(std::move(partial));
    return worked;
  }

  /// Caller-side completion: work is drained (or the job failed) and every
  /// participant folded out. Does not throw — the caller deregisters the
  /// job from the runtime first and rethrows `error` after, so a failed
  /// frame can never leak a registered job.
  void finish_as_caller() {
    util::MutexLock lock(mutex);
    cv.wait(lock, [&]() DCSN_REQUIRES(mutex) {
      return (counter.drained() || failed.load(std::memory_order_relaxed)) &&
             active == 0;
    });
    closed = true;
  }

  Runtime& runtime;
  const SynthesisConfig& config;
  const SpotGeometryGenerator& generator;
  const render::SpotProfile& profile;
  std::span<const SpotInstance> spots;  // lock-lint: unguarded(immutable after construction)
  render::Framebuffer& texture;
  const int max_participants;

  util::WorkCounter counter;  // lock-lint: unguarded(internally synchronized)
  util::Mutex mutex;
  util::CondVar cv;
  int active DCSN_GUARDED_BY(mutex) = 0;
  bool closed DCSN_GUARDED_BY(mutex) = false;
  std::atomic<bool> failed{false};
  std::exception_ptr error DCSN_GUARDED_BY(mutex);
  SerialStats stats DCSN_GUARDED_BY(mutex);
};

}  // namespace

SerialSynthesizer::SerialSynthesizer(SynthesisConfig config)
    : SerialSynthesizer(config, Runtime::global()) {}

SerialSynthesizer::SerialSynthesizer(SynthesisConfig config, Runtime& runtime)
    : config_(config),
      runtime_(&runtime),
      texture_(config.texture_width, config.texture_height),
      profile_(render::SpotProfile::make_shared(config.profile_shape,
                                                config.profile_resolution)) {}

double SerialSynthesizer::natural_intensity(const SynthesisConfig& config) {
  const double texture_area =
      static_cast<double>(config.texture_width) * config.texture_height;
  const double spot_area =
      config.spot_radius_px * config.spot_radius_px * 3.141592653589793;
  const double overlap =
      std::max(1.0, static_cast<double>(config.spot_count) * spot_area / texture_area);
  return 1.0 / std::sqrt(overlap);
}

SerialStats SerialSynthesizer::synthesize(const field::VectorField& f,
                                          std::span<const SpotInstance> spots,
                                          int threads) {
  DCSN_CHECK(threads >= 1, "thread count must be >= 1");
  const util::Stopwatch total;
  SerialStats stats;
  stats.spots = static_cast<std::int64_t>(spots.size());

  const SpotGeometryGenerator generator(config_, f);
  texture_.clear();

  if (threads == 1) {
    const render::RasterTarget target{texture_.pixels(), 0, 0};
    render::CommandBuffer buffer;
    buffer.reserve(kChunk, static_cast<std::size_t>(config_.vertices_per_spot()));
    util::TimeAccumulator genP, genT;
    for (std::size_t begin = 0; begin < spots.size(); begin += kChunk) {
      const std::size_t end = std::min(spots.size(), begin + kChunk);
      buffer.clear();
      {
        const util::ScopedTimer t(genP);
        for (std::size_t k = begin; k < end; ++k) generator.generate(spots[k], buffer);
      }
      {
        const util::ScopedTimer t(genT);
        render::rasterize_buffer(target, buffer, *profile_, render::BlendMode::kAdditive,
                                 stats.raster);
      }
      stats.vertices += static_cast<std::int64_t>(buffer.vertex_count());
    }
    stats.genP_seconds = genP.seconds();
    stats.genT_seconds = genT.seconds();
  } else {
    // Worker-private framebuffers reduced by lattice-exact addition; the
    // workers are the runtime's shared pool plus this thread.
    runtime_->ensure_workers(threads);
    auto job = std::make_shared<PartialReduceJob>(*runtime_, config_, generator,
                                                  *profile_, spots, texture_, threads);
    runtime_->register_job(job);
    (void)job->serve();  // the caller participates (and guarantees progress)
    // Wait out pool participants still holding chunks, deregister, and
    // only then surface a participant's exception — rethrowing first would
    // leak the job in the runtime's registry.
    job->finish_as_caller();
    runtime_->deregister_job(job.get());
    // Every participant folded out, so the lock is uncontended — taken
    // anyway to satisfy the guarded-member discipline.
    util::MutexLock lock(job->mutex);
    if (job->error) std::rethrow_exception(job->error);
    stats.genP_seconds = job->stats.genP_seconds;
    stats.genT_seconds = job->stats.genT_seconds;
    stats.vertices = job->stats.vertices;
    stats.raster = job->stats.raster;
  }

  stats.total_seconds = total.seconds();
  return stats;
}

}  // namespace dcsn::core
