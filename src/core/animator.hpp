// The complete interactive pipeline of figure 3/5:
//
//   read data -> advect particles -> generate texture -> (render scene)
//
// Animator drives a DncSynthesizer frame by frame: the data callback lets
// the application swap or mutate the field between frames (computational
// steering updates arrive 5-15 times a second in the paper), the particle
// system carries spot positions across frames, and an optional high-pass
// filter post-processes each texture. The rendered scene (tone mapping and
// overlays) is left to the application, as in the paper where it runs on
// the draw traversal.
#pragma once

#include <functional>
#include <optional>

#include "core/dnc_synthesizer.hpp"
#include "core/filters.hpp"
#include "core/synthesis_cache.hpp"
#include "particles/particle_system.hpp"

namespace dcsn::core {

struct AnimatorConfig {
  /// Advection time step per frame, as a fraction of the time it takes the
  /// fastest particle to cross one spot radius — keeps apparent texture
  /// motion consistent across data sets.
  double advect_radius_fraction = 0.5;
  /// Optional high-pass filter radius in pixels; 0 disables filtering.
  int high_pass_radius = 0;
  bool normalize = true;  ///< stabilize contrast across frames
  /// Temporal coherence: re-render only the tiles whose spot set changed
  /// (engine must be tiled; see core::SynthesisCache for the invalidation
  /// rules). Output is bit-identical to full resynthesis — the cache is a
  /// pure frame-rate lever. Contract: whenever read_data changes field
  /// *contents* in place — steering updates, or a time-varying dataset
  /// reloaded into the same object — call invalidate_cache() for that
  /// frame. The cache's automatic probes catch swapped field objects and
  /// changed domain/extremes/probe samples, but they are point samples and
  /// cannot see every localized in-place write.
  bool incremental = false;
};

struct AnimationFrame {
  FrameStats synthesis;
  double advect_seconds = 0.0;
  double filter_seconds = 0.0;
  double read_seconds = 0.0;
  double total_seconds = 0.0;
  const render::Framebuffer* texture = nullptr;  ///< valid until next step()
};

class Animator {
 public:
  /// `read_data` is pipeline step 1: it returns the field for this frame
  /// (and may update it in place — steering). The field reference must stay
  /// valid until the next call.
  using ReadData = std::function<const field::VectorField&(std::int64_t frame)>;

  Animator(AnimatorConfig config, DncSynthesizer& synthesizer,
           particles::ParticleSystem& particles, ReadData read_data);
  ~Animator();

  /// Runs one full pipeline iteration and returns its timing breakdown.
  AnimationFrame step();

  /// Drops the temporal cache; the next frame re-renders every tile. Call
  /// whenever the field's contents changed in place — steering updates or
  /// a dataset timestep reloaded into the same object — because the
  /// cache's automatic probes are samples and cannot see every localized
  /// in-place write.
  void invalidate_cache() { cache_.invalidate(); }

  [[nodiscard]] std::int64_t frame_number() const { return frame_; }

 private:
  AnimatorConfig config_;
  DncSynthesizer& synthesizer_;
  particles::ParticleSystem& particles_;
  ReadData read_data_;
  std::int64_t frame_ = 0;
  std::optional<render::Framebuffer> filtered_;
  SynthesisCache cache_;  ///< used when config_.incremental
};

}  // namespace dcsn::core
