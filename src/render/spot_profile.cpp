#include "render/spot_profile.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace dcsn::render {

namespace {

float shape_value(SpotShape shape, float r) {
  // r is the distance from the spot center in units of the spot radius
  // (r = 1 at the rim of the inscribed circle).
  if (r >= 1.0f) return 0.0f;
  switch (shape) {
    case SpotShape::kDisc:
      return 1.0f;
    case SpotShape::kGaussian: {
      // sigma = 1/2 of the radius; truncated at the rim.
      const float s = r * 2.0f;
      return std::exp(-0.5f * s * s);
    }
    case SpotShape::kCosine:
      return 0.5f * (1.0f + std::cos(std::numbers::pi_v<float> * r));
    case SpotShape::kRing: {
      // Raised cosine bump centered at r = 0.5, width 0.5.
      const float d = std::abs(r - 0.5f) * 4.0f;
      return d >= 1.0f ? 0.0f
                       : 0.5f * (1.0f + std::cos(std::numbers::pi_v<float> * d));
    }
  }
  return 0.0f;
}

}  // namespace

SpotProfile::SpotProfile(SpotShape shape, int resolution)
    : shape_(shape), res_(resolution), stride_(padded_stride(resolution)) {
  DCSN_CHECK(resolution >= 2, "profile resolution must be at least 2");
  // One duplicated row and column let the bilinear samplers fetch the +1
  // neighbour unconditionally; the row stride is additionally padded to a
  // cache-line multiple (padded_stride) for the vectorized gathers. Pad
  // floats beyond column res are never read and stay zero.
  const std::size_t stride = stride_;
  table_.resize(stride * (static_cast<std::size_t>(res_) + 1));
  double integral = 0.0;
  for (int y = 0; y < res_; ++y) {
    for (int x = 0; x < res_; ++x) {
      const float u = (static_cast<float>(x) + 0.5f) / static_cast<float>(res_);
      const float v = (static_cast<float>(y) + 0.5f) / static_cast<float>(res_);
      const float dx = u - 0.5f;
      const float dy = v - 0.5f;
      const float r = 2.0f * std::sqrt(dx * dx + dy * dy);  // 1 at inscribed rim
      const float value = shape_value(shape, r);
      table_[static_cast<std::size_t>(y) * stride + static_cast<std::size_t>(x)] =
          value;
      integral += value;
    }
  }
  // Normalize energy: scale so the mean over the unit square is 0.25 (the
  // disc's natural level ~ pi/4 / ~3). Keeps textures from different shapes
  // at comparable contrast. (Padding excluded from the mean.)
  const double mean =
      integral / (static_cast<double>(res_) * static_cast<double>(res_));
  if (mean > 0.0) {
    const auto scale = static_cast<float>(0.25 / mean);
    for (float& v : table_) v *= scale;
  }
  // Fill the padding after normalization: copy the last real column into
  // the padded one, then the last real row into the padded row.
  for (int y = 0; y < res_; ++y) {
    table_[static_cast<std::size_t>(y) * stride + static_cast<std::size_t>(res_)] =
        table_[static_cast<std::size_t>(y) * stride +
               static_cast<std::size_t>(res_ - 1)];
  }
  for (std::size_t x = 0; x < stride; ++x) {
    table_[static_cast<std::size_t>(res_) * stride + x] =
        table_[static_cast<std::size_t>(res_ - 1) * stride + x];
  }
}

}  // namespace dcsn::render
