// Recycling pool for Framebuffers (readback textures, partial buffers,
// filter scratch).
//
// The engine's hot paths used to allocate a fresh float texture per pipe
// readback and per worker-private partial — megabytes of allocator traffic
// per frame once several sessions multiplex one runtime. The pool keeps
// released buffers and hands them back on acquire().
//
// Checkout contract (the invariant the regression suite pins): acquire()
// always returns a buffer with *exactly* the requested dimensions and
// *every pixel zeroed*, regardless of what the recycled buffer previously
// held. A recycled buffer must never leak another job's pixels — the
// clean-tile retention path of the incremental engine composes fresh tiles
// over whatever the destination already contains, so a dirty checkout would
// silently corrupt retained regions.
#pragma once

#include <cstdint>
#include <vector>

#include "render/framebuffer.hpp"
#include "util/thread_annotations.hpp"

namespace dcsn::render {

class FramebufferPool {
 public:
  /// `max_idle` bounds how many released buffers are retained; extras are
  /// destroyed on release (newest kept — most likely to match future sizes).
  explicit FramebufferPool(std::size_t max_idle = 64) : max_idle_(max_idle) {}

  FramebufferPool(const FramebufferPool&) = delete;
  FramebufferPool& operator=(const FramebufferPool&) = delete;

  /// Returns a `width` x `height` buffer with all pixels zero. Reuses a
  /// released buffer's allocation when one is available.
  [[nodiscard]] Framebuffer acquire(int width, int height);

  /// Returns a buffer to the pool. Contents are irrelevant — the next
  /// acquire() re-validates dimensions and clears.
  void release(Framebuffer&& buffer);

  [[nodiscard]] std::size_t idle_count() const;

  /// acquire() calls served from a recycled buffer (vs fresh allocation).
  [[nodiscard]] std::int64_t reuse_count() const;

  /// Buffers checked out and not yet returned (acquires minus releases).
  /// This is the leak census the fault-matrix suite pins: after a torture
  /// run drains, every buffer must be back in the pool or owned by a live
  /// TileStore entry (which releases it on eviction), so outstanding_count
  /// minus the store's entry count must equal its pre-torture value.
  [[nodiscard]] std::int64_t outstanding_count() const;

 private:
  mutable util::Mutex mutex_;
  std::vector<Framebuffer> idle_ DCSN_GUARDED_BY(mutex_);
  const std::size_t max_idle_;
  std::int64_t reuses_ DCSN_GUARDED_BY(mutex_) = 0;
  std::int64_t outstanding_ DCSN_GUARDED_BY(mutex_) = 0;
};

}  // namespace dcsn::render
