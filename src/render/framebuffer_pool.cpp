#include "render/framebuffer_pool.hpp"

#include <utility>

#include "util/error.hpp"

namespace dcsn::render {

Framebuffer FramebufferPool::acquire(int width, int height) {
  Framebuffer buffer;
  {
    util::MutexLock lock(mutex_);
    if (!idle_.empty()) {
      buffer = std::move(idle_.back());
      idle_.pop_back();
      ++reuses_;
    }
    ++outstanding_;
  }
  // Outside the lock: reset() re-validates the dimensions and zero-fills,
  // which is the whole checkout contract — a recycled buffer can never leak
  // a previous job's pixels into a retention compose.
  buffer.reset(width, height);
  DCSN_CHECK(buffer.width() == width && buffer.height() == height,
             "framebuffer pool checkout must match the requested dimensions");
  return buffer;
}

void FramebufferPool::release(Framebuffer&& buffer) {
  if (buffer.pixel_count() == 0) return;  // default-constructed: nothing to keep
  util::MutexLock lock(mutex_);
  --outstanding_;
  if (idle_.size() >= max_idle_) {
    // Drop the oldest retained buffer instead of the incoming one: recent
    // sizes predict future acquires better.
    idle_.erase(idle_.begin());
  }
  idle_.push_back(std::move(buffer));
}

std::size_t FramebufferPool::idle_count() const {
  util::MutexLock lock(mutex_);
  return idle_.size();
}

std::int64_t FramebufferPool::reuse_count() const {
  util::MutexLock lock(mutex_);
  return reuses_;
}

std::int64_t FramebufferPool::outstanding_count() const {
  util::MutexLock lock(mutex_);
  return outstanding_;
}

}  // namespace dcsn::render
