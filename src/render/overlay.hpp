// Overlays composited over the rendered texture (pipeline step 4: "other
// visualization techniques may also be superimposed").
//
// Figure 6 layers a colormapped pollutant field and a map outline over the
// wind texture. The WorldToImage mapping ties world coordinates to image
// pixels so fields and polylines defined in field space land correctly.
#pragma once

#include <functional>
#include <span>

#include "field/scalar_field.hpp"
#include "field/vec2.hpp"
#include "render/image.hpp"

namespace dcsn::render {

/// Affine map from a world rectangle onto the full image (y flipped so
/// world "up" is image "up").
class WorldToImage {
 public:
  WorldToImage(field::Rect world, int image_width, int image_height)
      : world_(world), width_(image_width), height_(image_height) {}

  [[nodiscard]] std::pair<double, double> map(field::Vec2 p) const {
    const double u = (p.x - world_.x0) / world_.width();
    const double v = (p.y - world_.y0) / world_.height();
    return {u * width_, (1.0 - v) * height_};
  }

  [[nodiscard]] field::Vec2 unmap(double px, double py) const {
    return {world_.x0 + (px / width_) * world_.width(),
            world_.y0 + (1.0 - py / height_) * world_.height()};
  }

  [[nodiscard]] const field::Rect& world() const { return world_; }

 private:
  field::Rect world_;
  int width_;
  int height_;
};

/// Composites a scalar field over the image through a colormap. The value
/// range [lo, hi] maps to colormap [0,1]; `alpha(value_t)` gives per-pixel
/// opacity as a function of the normalized value, letting low concentrations
/// stay transparent (as the pollutant in fig. 6 does).
void overlay_scalar(Image& image, const WorldToImage& mapping,
                    const std::function<double(field::Vec2)>& sample, double lo,
                    double hi, ColormapKind kind,
                    const std::function<double(double)>& alpha);

/// Draws a polyline given in world coordinates, `thickness` pixels wide.
void draw_polyline(Image& image, const WorldToImage& mapping,
                   std::span<const field::Vec2> points, Rgb color,
                   double alpha = 1.0, int thickness = 1);

/// Fills a world-space rectangle with a flat color (used to mask the solid
/// block in the DNS figures).
void fill_rect(Image& image, const WorldToImage& mapping, field::Rect world_rect,
               Rgb color);

}  // namespace dcsn::render
