#include "render/scene.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dcsn::render {

float sample_texture(const Framebuffer& texture, double x, double y) {
  const double fx = std::clamp(x - 0.5, 0.0, static_cast<double>(texture.width() - 1));
  const double fy = std::clamp(y - 0.5, 0.0, static_cast<double>(texture.height() - 1));
  const int x0 = static_cast<int>(fx);
  const int y0 = static_cast<int>(fy);
  const int x1 = std::min(x0 + 1, texture.width() - 1);
  const int y1 = std::min(y0 + 1, texture.height() - 1);
  const auto tx = static_cast<float>(fx - x0);
  const auto ty = static_cast<float>(fy - y0);
  const auto px = texture.pixels();
  const float a = px(x0, y0) + (px(x1, y0) - px(x0, y0)) * tx;
  const float b = px(x0, y1) + (px(x1, y1) - px(x0, y1)) * tx;
  return a + (b - a) * ty;
}

Image render_scene(const Framebuffer& texture, const SceneView& view) {
  DCSN_CHECK(view.out_width > 0 && view.out_height > 0,
             "scene output size must be positive");
  DCSN_CHECK(view.texture_world.width() > 0 && view.texture_world.height() > 0,
             "texture world rect must be non-empty");

  // Tone-map parameters from the *visible* data so zooming keeps contrast.
  // Sanitized statistics + tone_map_byte: the same NaN-proof float->byte
  // path as texture_to_image (see render/image.hpp).
  double gain = view.tone.gain;
  double mean = 0.0;
  if (view.tone.auto_gain) {
    const ToneStats stats = sanitized_tone_stats(texture);
    mean = stats.mean;
    gain = stats.sigma > 0.0 ? 0.5 / (view.tone.sigma_range * stats.sigma) : 1.0;
  }

  Image img(view.out_width, view.out_height);
  for (int y = 0; y < view.out_height; ++y) {
    for (int x = 0; x < view.out_width; ++x) {
      // Output pixel -> world point inside the window (image y down).
      const double u = (x + 0.5) / view.out_width;
      const double v = (y + 0.5) / view.out_height;
      const field::Vec2 world = {view.window.x0 + u * view.window.width(),
                                 view.window.y1 - v * view.window.height()};
      // World point -> texture pixel coordinates (texture y also down).
      const double tx = (world.x - view.texture_world.x0) /
                        view.texture_world.width() * texture.width();
      const double ty = (view.texture_world.y1 - world.y) /
                        view.texture_world.height() * texture.height();
      const float value = sample_texture(texture, tx, ty);
      const auto byte = tone_map_byte(value, gain, mean);
      img.at(x, y) = {byte, byte, byte};
    }
  }
  return img;
}

}  // namespace dcsn::render
