// Single-channel float accumulation target.
//
// Spot noise sums signed spot contributions (f(x) = sum a_i h(x - x_i)), so
// the natural render target is a float texture centered on zero, not an
// 8-bit canvas. Each simulated graphics pipe owns one Framebuffer; partial
// results are gathered and blended by addition — blending order cannot
// change the result, which is what makes the divide and conquer correct.
#pragma once

#include <cstdint>
#include <vector>

#include "util/span2d.hpp"

namespace dcsn::render {

class Framebuffer {
 public:
  Framebuffer() = default;
  Framebuffer(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  [[nodiscard]] std::size_t byte_size() const { return pixel_count() * sizeof(float); }

  void clear(float value = 0.0f);

  /// Reshapes to `width` x `height` and zero-fills every pixel, reusing the
  /// existing allocation when it is large enough. This is the checkout path
  /// of render::FramebufferPool: a recycled buffer must never leak a
  /// previous frame's pixels, so reset() both re-validates the dimensions
  /// and clears unconditionally.
  void reset(int width, int height);

  [[nodiscard]] util::Span2D<float> pixels() {
    return {data_.data(), width_, height_};
  }
  [[nodiscard]] util::Span2D<const float> pixels() const {
    return {data_.data(), width_, height_};
  }

  [[nodiscard]] float& at(int x, int y) { return pixels()(x, y); }
  [[nodiscard]] float at(int x, int y) const { return pixels()(x, y); }

  /// dst += src, elementwise. Sizes must match.
  void accumulate(const Framebuffer& src);

  /// Copies `src` into this buffer at offset (x0, y0) (tile composition).
  void copy_rect_from(const Framebuffer& src, int x0, int y0);

  /// The inverse of copy_rect_from: copies the rect at (x0, y0) with `dst`'s
  /// dimensions out of this buffer into `dst` (tile extraction — how the
  /// incremental engine publishes a retained clean tile to the tile store
  /// without re-reading the pipe).
  void extract_rect_into(Framebuffer& dst, int x0, int y0) const;

  /// FNV-1a fingerprint of dimensions + raw pixel bits. The engine renders
  /// bit-deterministically, so this is the stable frame identity the golden
  /// suite checks in (tests/golden/).
  [[nodiscard]] std::uint64_t content_hash() const;

  [[nodiscard]] std::pair<float, float> min_max() const;

  /// Largest absolute per-pixel difference to `other` (sizes must match) —
  /// the metric the rasterizer equivalence tests and benches gate on.
  [[nodiscard]] float max_abs_diff(const Framebuffer& other) const;

  /// Mean of all pixels — for a zero-mean spot population this should hover
  /// near zero, a property the tests assert.
  [[nodiscard]] double mean() const;

  bool operator==(const Framebuffer& other) const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<float> data_;
};

}  // namespace dcsn::render
