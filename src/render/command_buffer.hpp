// Vertex streams from processors to a graphics pipe.
//
// Spot transformation happens in software on the CPUs (paper §4), so what
// crosses the bus is fully transformed geometry: for each spot a small
// textured mesh in texture-pixel coordinates plus its scalar intensity.
// A vertex is 16 bytes (x, y, u, v as float) — the figure the paper uses
// when it reports ~31 MB of geometry per texture and ~116 MB/s of bus
// traffic; byte_size() reproduces that accounting exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dcsn::render {

struct MeshVertex {
  float x = 0.0f;  ///< texture-space pixel coordinate
  float y = 0.0f;
  float u = 0.0f;  ///< spot-profile coordinate in [0,1]
  float v = 0.0f;
};
static_assert(sizeof(MeshVertex) == 16, "bandwidth accounting assumes 16-byte vertices");

/// One spot's mesh: `cols` x `rows` vertices forming (cols-1)*(rows-1)
/// quadrilaterals. A default (non-bent) spot is a 2x2 mesh = 1 quad.
struct MeshHeader {
  float intensity = 0.0f;  ///< the spot's a_i (already includes fade weight)
  std::uint16_t cols = 0;
  std::uint16_t rows = 0;
  std::uint32_t vertex_offset = 0;  ///< index into the buffer's vertex array

  /// Quadrilaterals this mesh scan-converts to (each is two triangles).
  [[nodiscard]] std::int64_t quad_count() const {
    if (cols < 2 || rows < 2) return 0;
    return static_cast<std::int64_t>(cols - 1) * static_cast<std::int64_t>(rows - 1);
  }
};

class CommandBuffer {
 public:
  CommandBuffer() = default;

  /// Pre-allocates for `spots` meshes of `vertices_per_spot` vertices.
  void reserve(std::size_t spots, std::size_t vertices_per_spot);

  /// Starts a new mesh and returns a span of `cols*rows` vertices for the
  /// caller to fill (row-major).
  std::span<MeshVertex> add_mesh(float intensity, int cols, int rows);

  [[nodiscard]] std::span<const MeshHeader> meshes() const { return headers_; }
  [[nodiscard]] std::span<const MeshVertex> vertices_of(const MeshHeader& h) const {
    return {vertices_.data() + h.vertex_offset,
            static_cast<std::size_t>(h.cols) * static_cast<std::size_t>(h.rows)};
  }

  [[nodiscard]] std::size_t mesh_count() const { return headers_.size(); }
  [[nodiscard]] std::size_t vertex_count() const { return vertices_.size(); }

  /// Total quads across all meshes — the triangle count the rasterizer will
  /// see is twice this. The benches use it for per-triangle ratios.
  [[nodiscard]] std::int64_t quad_count() const {
    std::int64_t quads = 0;
    for (const MeshHeader& h : headers_) quads += h.quad_count();
    return quads;
  }

  /// Raw geometry bytes this buffer moves across the bus.
  [[nodiscard]] std::size_t byte_size() const {
    return vertices_.size() * sizeof(MeshVertex) + headers_.size() * sizeof(MeshHeader);
  }

  [[nodiscard]] bool empty() const { return headers_.empty(); }
  void clear();

 private:
  std::vector<MeshHeader> headers_;
  std::vector<MeshVertex> vertices_;
};

}  // namespace dcsn::render
