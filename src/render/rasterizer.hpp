// Software scan conversion of textured spot meshes.
//
// This is the graphics pipe's core: each spot mesh arrives as transformed
// vertices (texture-pixel coordinates + profile UVs) and is scan-converted
// quad by quad, each quad split into two triangles rasterized with the
// top-left fill rule so adjacent quads of a bent-spot ribbon never double-
// blend a pixel along their shared edge. Fragments sample the spot profile
// bilinearly and blend into the float target — the software equivalent of
// texture-mapped polygon rendering with additive blending on the
// InfiniteReality.
#pragma once

#include <cstdint>

#include "render/command_buffer.hpp"
#include "render/spot_profile.hpp"
#include "util/span2d.hpp"

namespace dcsn::render {

enum class BlendMode {
  kAdditive,  ///< dst += w * tex — the spot-noise sum
  kMaximum,   ///< dst = max(dst, w * tex) — used by some filtered variants
};

/// Where fragments land. `origin_x/y` let a tile rasterize geometry that is
/// expressed in full-texture coordinates (texture decomposition, paper §3).
struct RasterTarget {
  util::Span2D<float> pixels;
  float origin_x = 0.0f;
  float origin_y = 0.0f;
};

struct RasterStats {
  std::int64_t triangles = 0;
  std::int64_t quads = 0;
  std::int64_t fragments = 0;  ///< pixels actually blended

  RasterStats& operator+=(const RasterStats& o) {
    triangles += o.triangles;
    quads += o.quads;
    fragments += o.fragments;
    return *this;
  }
};

/// Rasterizes one triangle. Vertices carry positions in texture pixels and
/// profile UVs; `weight` scales every fragment (the spot's a_i).
void rasterize_triangle(const RasterTarget& target, const MeshVertex& a,
                        const MeshVertex& b, const MeshVertex& c, float weight,
                        const SpotProfile& profile, BlendMode mode,
                        RasterStats& stats);

/// Rasterizes a cols-x-rows mesh (row-major vertices) as its component quads.
void rasterize_mesh(const RasterTarget& target, std::span<const MeshVertex> vertices,
                    int cols, int rows, float weight, const SpotProfile& profile,
                    BlendMode mode, RasterStats& stats);

/// Rasterizes every mesh in a command buffer.
void rasterize_buffer(const RasterTarget& target, const CommandBuffer& buffer,
                      const SpotProfile& profile, BlendMode mode, RasterStats& stats);

}  // namespace dcsn::render
