// Software scan conversion of textured spot meshes.
//
// This is the graphics pipe's core: each spot mesh arrives as transformed
// vertices (texture-pixel coordinates + profile UVs) and is scan-converted
// quad by quad, each quad split into two triangles rasterized with the
// top-left fill rule so adjacent quads of a bent-spot ribbon never double-
// blend a pixel along their shared edge. Fragments sample the spot profile
// bilinearly and blend into the float target — the software equivalent of
// texture-mapped polygon rendering with additive blending on the
// InfiniteReality.
//
// Two interchangeable triangle fill algorithms (RasterAlgorithm):
//
//   * kSpan (default) — a span-based scanline kernel. Per row the three
//     canonical edge functions are solved for the exact covered interval
//     [x_start, x_end); inside it u, v and the bilinear fetch are stepped
//     with per-triangle constants (SpotProfile::RowSampler) and blended
//     through the util::simd kernels — a straight-line add/fetch/blend with
//     no per-fragment branches, and no iterations spent on rejected pixels.
//   * kReference — the original bounding-box walk testing all three edge
//     functions per pixel. Kept selectable for equivalence testing and for
//     the bench_raster_kernel ablation.
//
// Both algorithms construct edges from the same canonical endpoint ordering
// and evaluate every edge value with the same expression (direct multiply
// from the canonical row origin), so their pixel coverage is bit-identical
// — the fuzz suite in tests/test_rasterizer.cpp asserts exactly that — and
// shared-edge watertightness (no seam gap, no double blend) is preserved.
//
// Rasterization is *target-independent*: vertices stay in full-texture
// ("global") pixel coordinates, the canonical anchor for edge and UV
// evaluation is derived from the triangle's own bounding box (never from
// the target rect), and the target origin is used purely for addressing.
// A fragment's coverage decision and blended value are therefore pure
// functions of the triangle and the global pixel — identical bits whether
// the pixel is rendered by a full-texture pipe or by any tile that contains
// it. Combined with the contribution lattice (util/simd.hpp), which makes
// additive blending exactly associative, the whole engine produces
// bit-identical textures across pipe counts, contiguous vs tiled mode,
// tile layouts, and work-steal schedules — the determinism suite asserts
// this, and core::SynthesisCache's temporal tile reuse depends on it.
#pragma once

#include <cstdint>

#include "render/command_buffer.hpp"
#include "render/spot_profile.hpp"
#include "util/span2d.hpp"

namespace dcsn::render {

enum class BlendMode {
  kAdditive,  ///< dst += w * tex — the spot-noise sum
  kMaximum,   ///< dst = max(dst, w * tex) — used by some filtered variants
};

/// Triangle fill strategy. kSpan is the production hot path; kReference is
/// the bbox-walk oracle it is measured and tested against.
enum class RasterAlgorithm {
  kSpan,       ///< scanline span solve + incremental row kernel
  kReference,  ///< per-pixel bounding-box walk
};

/// Where fragments land. `origin_x/y` is the global pixel coordinate of
/// pixels(0, 0), letting a tile rasterize geometry that is expressed in
/// full-texture coordinates (texture decomposition, paper §3). Integral on
/// purpose: tiles sit on pixel boundaries, and an integer origin keeps
/// addressing exact so tiled output matches the full-texture pipes bit for
/// bit.
struct RasterTarget {
  util::Span2D<float> pixels;
  int origin_x = 0;
  int origin_y = 0;
  RasterAlgorithm algorithm = RasterAlgorithm::kSpan;
};

struct RasterStats {
  std::int64_t triangles = 0;
  std::int64_t quads = 0;
  std::int64_t fragments = 0;  ///< pixels actually covered and blended
  /// Inner-loop iterations: bbox area for kReference, span length for kSpan.
  /// fragments / pixels_visited is the fill efficiency the span kernel buys;
  /// bench_raster_kernel reports it as the visited ratio.
  std::int64_t pixels_visited = 0;

  RasterStats& operator+=(const RasterStats& o) {
    triangles += o.triangles;
    quads += o.quads;
    fragments += o.fragments;
    pixels_visited += o.pixels_visited;
    return *this;
  }
};

/// Rasterizes one triangle. Vertices carry positions in texture pixels and
/// profile UVs; `weight` scales every fragment (the spot's a_i).
void rasterize_triangle(const RasterTarget& target, const MeshVertex& a,
                        const MeshVertex& b, const MeshVertex& c, float weight,
                        const SpotProfile& profile, BlendMode mode,
                        RasterStats& stats);

/// Rasterizes a cols-x-rows mesh (row-major vertices) as its component
/// quads. Blend mode and algorithm are dispatched once per mesh, not per
/// triangle.
void rasterize_mesh(const RasterTarget& target, std::span<const MeshVertex> vertices,
                    int cols, int rows, float weight, const SpotProfile& profile,
                    BlendMode mode, RasterStats& stats);

/// Rasterizes every mesh in a command buffer. The profile/blend/algorithm
/// dispatch is hoisted out of the mesh loop: the triangle kernel is selected
/// once and passed down (all meshes of a buffer share pipe state).
void rasterize_buffer(const RasterTarget& target, const CommandBuffer& buffer,
                      const SpotProfile& profile, BlendMode mode, RasterStats& stats);

}  // namespace dcsn::render
