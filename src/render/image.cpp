#include "render/image.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dcsn::render {

Image::Image(int width, int height, Rgb fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {
  DCSN_CHECK(width > 0 && height > 0, "image dimensions must be positive");
}

void Image::blend(int x, int y, Rgb color, double alpha) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  alpha = std::clamp(alpha, 0.0, 1.0);
  Rgb& dst = at(x, y);
  dst.r = static_cast<std::uint8_t>(std::lround(dst.r + (color.r - dst.r) * alpha));
  dst.g = static_cast<std::uint8_t>(std::lround(dst.g + (color.g - dst.g) * alpha));
  dst.b = static_cast<std::uint8_t>(std::lround(dst.b + (color.b - dst.b) * alpha));
}

double texture_stddev(const Framebuffer& texture) {
  const auto pixels = texture.pixels();
  const double mean = texture.mean();
  double sum_sq = 0.0;
  for (int y = 0; y < pixels.height(); ++y) {
    for (const float v : pixels.row(y)) {
      const double d = v - mean;
      sum_sq += d * d;
    }
  }
  const auto n = static_cast<double>(texture.pixel_count());
  return n > 0 ? std::sqrt(sum_sq / n) : 0.0;
}

namespace {
// Non-finite pixels (a NaN that leaked from hostile input data, or an
// overflowed accumulation) flush to 0.0 — the zero-mean texture's neutral
// value, i.e. mid-gray after tone mapping. The PGM round-trip tests pin
// this down.
inline double finite_or_zero(float v) {
  return std::isfinite(v) ? static_cast<double>(v) : 0.0;
}
}  // namespace

ToneStats sanitized_tone_stats(const Framebuffer& texture) {
  const auto pixels = texture.pixels();
  const auto n = static_cast<double>(texture.pixel_count());
  ToneStats stats;
  if (n <= 0) return stats;
  double sum = 0.0;
  for (int y = 0; y < texture.height(); ++y)
    for (int x = 0; x < texture.width(); ++x) sum += finite_or_zero(pixels(x, y));
  stats.mean = sum / n;
  double sum_sq = 0.0;
  for (int y = 0; y < texture.height(); ++y) {
    for (int x = 0; x < texture.width(); ++x) {
      const double d = finite_or_zero(pixels(x, y)) - stats.mean;
      sum_sq += d * d;
    }
  }
  stats.sigma = std::sqrt(sum_sq / n);
  return stats;
}

std::uint8_t tone_map_byte(float value, double gain, double mean) {
  const double gray = 0.5 + gain * (finite_or_zero(value) - mean);
  // Out-of-gamut grays (huge but finite pixel values) clamp to the 8-bit
  // range; the clamp happens before the lround so the cast is always
  // defined.
  return static_cast<std::uint8_t>(std::lround(std::clamp(gray, 0.0, 1.0) * 255.0));
}

Image texture_to_image(const Framebuffer& texture, const ToneMap& tone) {
  const auto pixels = texture.pixels();
  double gain = tone.gain;
  double mean = 0.0;
  if (tone.auto_gain) {
    const ToneStats stats = sanitized_tone_stats(texture);
    mean = stats.mean;
    gain = stats.sigma > 0.0 ? 0.5 / (tone.sigma_range * stats.sigma) : 1.0;
  }

  Image img(texture.width(), texture.height());
  for (int y = 0; y < texture.height(); ++y) {
    for (int x = 0; x < texture.width(); ++x) {
      const auto byte = tone_map_byte(pixels(x, y), gain, mean);
      img.at(x, y) = {byte, byte, byte};
    }
  }
  return img;
}

}  // namespace dcsn::render
