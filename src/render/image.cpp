#include "render/image.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace dcsn::render {

Image::Image(int width, int height, Rgb fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {
  DCSN_CHECK(width > 0 && height > 0, "image dimensions must be positive");
}

void Image::blend(int x, int y, Rgb color, double alpha) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  alpha = std::clamp(alpha, 0.0, 1.0);
  Rgb& dst = at(x, y);
  dst.r = static_cast<std::uint8_t>(std::lround(dst.r + (color.r - dst.r) * alpha));
  dst.g = static_cast<std::uint8_t>(std::lround(dst.g + (color.g - dst.g) * alpha));
  dst.b = static_cast<std::uint8_t>(std::lround(dst.b + (color.b - dst.b) * alpha));
}

double texture_stddev(const Framebuffer& texture) {
  const auto pixels = texture.pixels();
  const double mean = texture.mean();
  double sum_sq = 0.0;
  for (int y = 0; y < pixels.height(); ++y) {
    for (const float v : pixels.row(y)) {
      const double d = v - mean;
      sum_sq += d * d;
    }
  }
  const auto n = static_cast<double>(texture.pixel_count());
  return n > 0 ? std::sqrt(sum_sq / n) : 0.0;
}

Image texture_to_image(const Framebuffer& texture, const ToneMap& tone) {
  double gain = tone.gain;
  if (tone.auto_gain) {
    const double sigma = texture_stddev(texture);
    gain = sigma > 0.0 ? 0.5 / (tone.sigma_range * sigma) : 1.0;
  }
  const double mean = tone.auto_gain ? texture.mean() : 0.0;

  Image img(texture.width(), texture.height());
  const auto pixels = texture.pixels();
  for (int y = 0; y < texture.height(); ++y) {
    for (int x = 0; x < texture.width(); ++x) {
      const double gray = 0.5 + gain * (pixels(x, y) - mean);
      const auto byte = static_cast<std::uint8_t>(
          std::lround(std::clamp(gray, 0.0, 1.0) * 255.0));
      img.at(x, y) = {byte, byte, byte};
    }
  }
  return img;
}

}  // namespace dcsn::render
