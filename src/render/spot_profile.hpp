// The spot function h(x): intensity profiles sampled as textures.
//
// A spot is "any geometric shape ... usually a small circle" (paper §1).
// On the Onyx2 the spot was a texture map applied to the spot polygon; here
// the profile is a precomputed table the rasterizer samples bilinearly —
// the same role, same cost structure (one filtered texture fetch per
// fragment). Profiles are immutable after construction and shared across
// threads by shared_ptr (they are the pipe's "texture objects").
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/simd_dispatch.hpp"

namespace dcsn::render {

enum class SpotShape {
  kDisc,      ///< hard-edged circle — van Wijk's original spot
  kGaussian,  ///< exp(-r^2/2sigma^2) falloff, sigma = radius/2
  kCosine,    ///< raised-cosine falloff, C1 at the rim
  kRing,      ///< annulus, peak at r = 0.5 — used for filtered spot variants
};

class SpotProfile {
 public:
  /// Builds a `resolution`-squared table of the given shape. The profile's
  /// support is the inscribed circle of the unit square; integral over the
  /// square is normalized to a shape-independent constant so textures built
  /// from different shapes have comparable energy.
  SpotProfile(SpotShape shape, int resolution = 64);

  /// Bilinear sample at (u, v) in [0,1]^2; zero outside. The guard is
  /// written negated so a NaN coordinate (degenerate barycentric weights on
  /// near-zero-area triangles) falls into the zero branch instead of
  /// reaching the int cast, which would be undefined.
  ///
  /// The table stores one duplicated row and column past the logical
  /// resolution (row stride padded further for alignment, see
  /// padded_stride), so the +1 neighbour fetch needs no clamp: at the last
  /// texel it lerps between equal values, which is exactly what the clamped
  /// fetch produced.
  [[nodiscard]] float sample(float u, float v) const {
    if (!(u >= 0.0f && u < 1.0f && v >= 0.0f && v < 1.0f)) return 0.0f;
    const float fx = u * static_cast<float>(res_ - 1);
    const float fy = v * static_cast<float>(res_ - 1);
    const int x0 = static_cast<int>(fx);
    const int y0 = static_cast<int>(fy);
    const float tx = fx - static_cast<float>(x0);
    const float ty = fy - static_cast<float>(y0);
    const float a = at(x0, y0) + (at(x0 + 1, y0) - at(x0, y0)) * tx;
    const float b = at(x0, y0 + 1) + (at(x0 + 1, y0 + 1) - at(x0, y0 + 1)) * tx;
    return a + (b - a) * ty;
  }

  /// Incremental bilinear fetch along raster spans. UV is affine across a
  /// span (du/dx, dv/dx are per-triangle constants), so the sampler is
  /// built once per triangle with the gradient, rebased per row with
  /// start_row(), and each fragment costs one fixed-point position step
  /// plus the four-texel lerp — no bounds checks: the caller restricts each
  /// span to fragments whose UV lies in [0,1) (the span rasterizer's
  /// in-range sub-span solve), and the duplicated table row/column covers
  /// the +1 neighbour at the last texel.
  ///
  /// Texel positions are stepped in 32.32 fixed point: `base + k * step` is
  /// exact integer arithmetic (no error accumulation over the span), the
  /// texel index is a shift and the lerp fraction a mask — far cheaper per
  /// fragment than double evaluation plus float/int conversions, while the
  /// one-shot quantization error (< 2^-32 texel) is invisible at float
  /// precision.
  class RowSampler {
   public:
    /// (du, dv): UV change per step. Gradients whose magnitude exceeds one
    /// profile width per step are recorded as zero: a span of two or more
    /// in-range fragments bounds |du| by 1/(steps-1) <= 1 and therefore
    /// |du * scale| by scale (plus rounding slack), so an oversized
    /// gradient can only occur on single-fragment spans, where the step is
    /// never applied — the cap exists purely to keep fixed() in range for
    /// arbitrary (NaN/huge) gradients of degenerate geometry.
    RowSampler(const SpotProfile& p, double du, double dv)
        : table_(p.table_.data()),
          stride_(p.stride_),
          scale_(static_cast<double>(p.res_ - 1)) {
      const double cap = scale_ + 1.0;
      const double sx = du * scale_;
      const double sy = dv * scale_;
      dfx_ = sx >= -cap && sx <= cap ? fixed(sx) : 0;
      dfy_ = sy >= -cap && sy <= cap ? fixed(sy) : 0;
    }

    /// Rebase to a row's span start. Precondition: (u0, v0) in [0,1)^2.
    void start_row(double u0, double v0) {
      fx0_ = fixed(u0 * scale_);
      fy0_ = fixed(v0 * scale_);
    }

    /// Texel at step k of the current row. Precondition: the UV at step k
    /// is in [0,1)^2.
    [[nodiscard]] float sample_at(int k) const {
      std::int64_t fx = fx0_ + k * dfx_;
      std::int64_t fy = fy0_ + k * dfy_;
      // Quantization slack is under a millionth of a texel but can dip one
      // fixed-point ulp below zero; clamp instead of faulting. (The high
      // side needs no clamp: the slack keeps the index at res-1 and the +1
      // neighbour lands on the duplicated table column/row.)
      fx = fx < 0 ? 0 : fx;
      fy = fy < 0 ? 0 : fy;
      const int x0 = static_cast<int>(fx >> 32);
      const int y0 = static_cast<int>(fy >> 32);
      const float tx =
          static_cast<float>(static_cast<std::uint32_t>(fx)) * 0x1p-32f;
      const float ty =
          static_cast<float>(static_cast<std::uint32_t>(fy)) * 0x1p-32f;
      const float* row0 = table_ + static_cast<std::size_t>(y0) * stride_;
      const float* row1 = row0 + stride_;
      const float a = row0[x0] + (row0[x0 + 1] - row0[x0]) * tx;
      const float b = row1[x0] + (row1[x0 + 1] - row1[x0]) * tx;
      return a + (b - a) * ty;
    }

    /// The sampler state rebased to step `base`, packaged for the
    /// runtime-dispatched span kernels (util::simd::KernelTable's
    /// sample_row_*). Exact: `fx0_ + base * dfx_` is the same int64
    /// arithmetic sample_at(base + k) performs, so a kernel walking the
    /// returned span reproduces sample_at's positions bit-for-bit.
    /// Precondition: as for sample_at, every sampled step stays in [0,1)^2.
    [[nodiscard]] util::simd::SampleSpan span(int base, float weight) const {
      return {table_,
              stride_,
              fx0_ + static_cast<std::int64_t>(base) * dfx_,
              fy0_ + static_cast<std::int64_t>(base) * dfy_,
              dfx_,
              dfy_,
              weight};
    }

   private:
    static std::int64_t fixed(double texels) {
      return static_cast<std::int64_t>(texels * 4294967296.0 +
                                       (texels < 0 ? -0.5 : 0.5));
    }

    const float* table_;
    std::size_t stride_;
    double scale_;
    std::int64_t fx0_ = 0, fy0_ = 0, dfx_ = 0, dfy_ = 0;
  };

  [[nodiscard]] SpotShape shape() const { return shape_; }
  [[nodiscard]] int resolution() const { return res_; }

  /// Shared immutable profile (a "texture object" bound via pipe state).
  [[nodiscard]] static std::shared_ptr<const SpotProfile> make_shared(
      SpotShape shape, int resolution = 64) {
    return std::make_shared<const SpotProfile>(shape, resolution);
  }

 private:
  /// Valid for x, y in [0, res]: the table is padded with one duplicated
  /// row and column so bilinear neighbour fetches never need a clamp.
  [[nodiscard]] float at(int x, int y) const {
    return table_[static_cast<std::size_t>(y) * stride_ + static_cast<std::size_t>(x)];
  }

  /// Row stride: the res+1 logical columns (one duplicated for the +1
  /// neighbour) rounded up to a 16-float (64-byte) multiple, so every table
  /// row starts on a cache-line boundary and the vectorized neighbour
  /// gathers stay alignment-friendly. The pad floats past column res are
  /// never fetched (they hold zero).
  [[nodiscard]] static std::size_t padded_stride(int res) {
    const std::size_t needed = static_cast<std::size_t>(res) + 1;
    return (needed + 15) & ~static_cast<std::size_t>(15);
  }

  SpotShape shape_;
  int res_;
  std::size_t stride_;        ///< padded row stride in floats
  std::vector<float> table_;  ///< (res+1) rows x stride_ floats, row-major
};

}  // namespace dcsn::render
