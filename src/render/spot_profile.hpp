// The spot function h(x): intensity profiles sampled as textures.
//
// A spot is "any geometric shape ... usually a small circle" (paper §1).
// On the Onyx2 the spot was a texture map applied to the spot polygon; here
// the profile is a precomputed table the rasterizer samples bilinearly —
// the same role, same cost structure (one filtered texture fetch per
// fragment). Profiles are immutable after construction and shared across
// threads by shared_ptr (they are the pipe's "texture objects").
#pragma once

#include <memory>
#include <vector>

namespace dcsn::render {

enum class SpotShape {
  kDisc,      ///< hard-edged circle — van Wijk's original spot
  kGaussian,  ///< exp(-r^2/2sigma^2) falloff, sigma = radius/2
  kCosine,    ///< raised-cosine falloff, C1 at the rim
  kRing,      ///< annulus, peak at r = 0.5 — used for filtered spot variants
};

class SpotProfile {
 public:
  /// Builds a `resolution`-squared table of the given shape. The profile's
  /// support is the inscribed circle of the unit square; integral over the
  /// square is normalized to a shape-independent constant so textures built
  /// from different shapes have comparable energy.
  SpotProfile(SpotShape shape, int resolution = 64);

  /// Bilinear sample at (u, v) in [0,1]^2; zero outside.
  [[nodiscard]] float sample(float u, float v) const {
    if (u < 0.0f || u >= 1.0f || v < 0.0f || v >= 1.0f) return 0.0f;
    const float fx = u * static_cast<float>(res_ - 1);
    const float fy = v * static_cast<float>(res_ - 1);
    const int x0 = static_cast<int>(fx);
    const int y0 = static_cast<int>(fy);
    const int x1 = x0 + 1 < res_ ? x0 + 1 : x0;
    const int y1 = y0 + 1 < res_ ? y0 + 1 : y0;
    const float tx = fx - static_cast<float>(x0);
    const float ty = fy - static_cast<float>(y0);
    const float a = at(x0, y0) + (at(x1, y0) - at(x0, y0)) * tx;
    const float b = at(x0, y1) + (at(x1, y1) - at(x0, y1)) * tx;
    return a + (b - a) * ty;
  }

  [[nodiscard]] SpotShape shape() const { return shape_; }
  [[nodiscard]] int resolution() const { return res_; }

  /// Shared immutable profile (a "texture object" bound via pipe state).
  [[nodiscard]] static std::shared_ptr<const SpotProfile> make_shared(
      SpotShape shape, int resolution = 64) {
    return std::make_shared<const SpotProfile>(shape, resolution);
  }

 private:
  [[nodiscard]] float at(int x, int y) const {
    return table_[static_cast<std::size_t>(y) * static_cast<std::size_t>(res_) +
                  static_cast<std::size_t>(x)];
  }

  SpotShape shape_;
  int res_;
  std::vector<float> table_;
};

}  // namespace dcsn::render
