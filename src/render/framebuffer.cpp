#include "render/framebuffer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/simd.hpp"
#include "util/simd_dispatch.hpp"

namespace dcsn::render {

namespace {
// Validated before the pixel vector is sized: a negative dimension cast to
// size_t would otherwise hit the allocator first and throw the wrong type.
std::size_t checked_pixel_count(int width, int height) {
  DCSN_CHECK(width > 0 && height > 0, "framebuffer dimensions must be positive");
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
}
}  // namespace

Framebuffer::Framebuffer(int width, int height)
    : width_(width), height_(height), data_(checked_pixel_count(width, height), 0.0f) {}

void Framebuffer::clear(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Framebuffer::reset(int width, int height) {
  const std::size_t count = checked_pixel_count(width, height);
  width_ = width;
  height_ = height;
  data_.assign(count, 0.0f);
}

void Framebuffer::accumulate(const Framebuffer& src) {
  DCSN_CHECK(src.width_ == width_ && src.height_ == height_,
             "accumulate requires equal framebuffer sizes");
  // Dispatched util::simd tier; every tier's add is the lattice-exact
  // gather-blend accumulation, bit-identical across tiers.
  util::simd::kernels().add(data_.data(), src.data_.data(), data_.size());
}

void Framebuffer::copy_rect_from(const Framebuffer& src, int x0, int y0) {
  // Widen before adding: for hostile origins near INT_MAX the naive
  // `x0 + src.width_` wraps (signed overflow, UB) and can accept an
  // out-of-bounds rect. See Framebuffer.CopyRectRejectsOverflowingOrigin.
  DCSN_CHECK(x0 >= 0 && y0 >= 0 &&
                 static_cast<std::int64_t>(x0) + src.width_ <= width_ &&
                 static_cast<std::int64_t>(y0) + src.height_ <= height_,
             "tile must fit inside the destination");
  for (int y = 0; y < src.height_; ++y) {
    const auto src_row = src.pixels().row(y);
    std::copy(src_row.begin(), src_row.end(), pixels().row(y + y0).begin() + x0);
  }
}

void Framebuffer::extract_rect_into(Framebuffer& dst, int x0, int y0) const {
  // Same signed-overflow hazard as copy_rect_from: widen before adding.
  DCSN_CHECK(x0 >= 0 && y0 >= 0 &&
                 static_cast<std::int64_t>(x0) + dst.width_ <= width_ &&
                 static_cast<std::int64_t>(y0) + dst.height_ <= height_,
             "extracted rect must lie inside the source");
  for (int y = 0; y < dst.height_; ++y) {
    const auto src_row = pixels().row(y + y0);
    std::copy(src_row.begin() + x0, src_row.begin() + x0 + dst.width_,
              dst.pixels().row(y).begin());
  }
}

float Framebuffer::max_abs_diff(const Framebuffer& other) const {
  DCSN_CHECK(other.width_ == width_ && other.height_ == height_,
             "max_abs_diff requires equal framebuffer sizes");
  float worst = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::uint64_t Framebuffer::content_hash() const {
  // Dimensions fold in first so reshaped buffers with equal bytes cannot
  // collide; pixels hash as raw bits, which is exactly as strict as
  // operator== except that it distinguishes -0.0f from +0.0f (the engine
  // never produces -0.0f — contributions are lattice-snapped, see
  // util/simd.hpp).
  std::uint64_t h = util::fnv1a(&width_, sizeof width_);
  h = util::fnv1a(&height_, sizeof height_, h);
  return util::fnv1a(data_.data(), data_.size() * sizeof(float), h);
}

std::pair<float, float> Framebuffer::min_max() const {
  if (data_.empty()) return {0.0f, 0.0f};
  const auto [lo, hi] = std::minmax_element(data_.begin(), data_.end());
  return {*lo, *hi};
}

double Framebuffer::mean() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (const float v : data_) sum += v;
  return sum / static_cast<double>(data_.size());
}

bool Framebuffer::operator==(const Framebuffer& other) const {
  return width_ == other.width_ && height_ == other.height_ && data_ == other.data_;
}

}  // namespace dcsn::render
