#include "render/overlay.hpp"

#include <algorithm>
#include <cmath>

namespace dcsn::render {

void overlay_scalar(Image& image, const WorldToImage& mapping,
                    const std::function<double(field::Vec2)>& sample, double lo,
                    double hi, ColormapKind kind,
                    const std::function<double(double)>& alpha) {
  const double span = hi - lo;
  if (span <= 0.0) return;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const field::Vec2 p = mapping.unmap(x + 0.5, y + 0.5);
      const double t = std::clamp((sample(p) - lo) / span, 0.0, 1.0);
      const double a = alpha(t);
      if (a <= 0.0) continue;
      image.blend(x, y, colormap(kind, t), a);
    }
  }
}

void draw_polyline(Image& image, const WorldToImage& mapping,
                   std::span<const field::Vec2> points, Rgb color, double alpha,
                   int thickness) {
  if (points.size() < 2) return;
  const double radius = std::max(0.5, thickness * 0.5);
  auto stamp = [&](double px, double py) {
    if (thickness <= 1) {
      // Crisp single-pixel line: paint the pixel containing the sample.
      image.blend(static_cast<int>(std::floor(px)), static_cast<int>(std::floor(py)),
                  color, alpha);
      return;
    }
    const int x0 = static_cast<int>(std::floor(px - radius));
    const int x1 = static_cast<int>(std::ceil(px + radius));
    const int y0 = static_cast<int>(std::floor(py - radius));
    const int y1 = static_cast<int>(std::ceil(py + radius));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const double dx = (x + 0.5) - px;
        const double dy = (y + 0.5) - py;
        if (dx * dx + dy * dy <= radius * radius) image.blend(x, y, color, alpha);
      }
    }
  };
  for (std::size_t k = 0; k + 1 < points.size(); ++k) {
    auto [ax, ay] = mapping.map(points[k]);
    auto [bx, by] = mapping.map(points[k + 1]);
    const double len = std::hypot(bx - ax, by - ay);
    const int steps = std::max(1, static_cast<int>(std::ceil(len)));
    for (int s = 0; s <= steps; ++s) {
      const double t = static_cast<double>(s) / steps;
      stamp(ax + (bx - ax) * t, ay + (by - ay) * t);
    }
  }
}

void fill_rect(Image& image, const WorldToImage& mapping, field::Rect world_rect,
               Rgb color) {
  auto [x0, y1] = mapping.map(world_rect.min());  // world min -> image bottom
  auto [x1, y0] = mapping.map(world_rect.max());
  const int px0 = std::max(0, static_cast<int>(std::floor(x0)));
  const int px1 = std::min(image.width() - 1, static_cast<int>(std::ceil(x1)));
  const int py0 = std::max(0, static_cast<int>(std::floor(y0)));
  const int py1 = std::min(image.height() - 1, static_cast<int>(std::ceil(y1)));
  for (int y = py0; y <= py1; ++y)
    for (int x = px0; x <= px1; ++x) image.at(x, y) = color;
}

}  // namespace dcsn::render
