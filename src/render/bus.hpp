// Shared host <-> graphics bus model.
//
// The paper's machine model (fig. 4) has one bus connecting all processors
// to the graphics subsystem (800 MB/s on the Onyx2). The bus matters for
// two of the paper's observations: vertex traffic must fit (it does, by a
// wide margin) and gathered partial textures cross the bus sequentially
// (part of the overhead term c in eq. 3.2).
//
// Model: a serialized channel with a fixed bandwidth. schedule() reserves a
// slot for a transfer and returns its completion time without blocking the
// caller — downstream consumers (the pipe) wait for the data to "arrive",
// which reproduces DMA-style overlap of computation and transfer. transfer()
// is the synchronous variant used for readback (glReadPixels semantics).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace dcsn::render {

class Bus {
 public:
  // determinism: the bus is a *timing* model — its wall-clock reads decide
  // when simulated transfers complete, never what pixels are produced.
  using Clock = std::chrono::steady_clock;

  /// bytes_per_second == 0 disables throttling (infinite bandwidth).
  explicit Bus(double bytes_per_second = 0.0);

  /// Reserves bus time for `bytes` and returns when the transfer completes.
  /// Never blocks; multiple pipes' transfers serialize on the shared channel.
  [[nodiscard]] Clock::time_point schedule(std::size_t bytes);

  /// Synchronous transfer: blocks the caller until the bytes have moved.
  void transfer(std::size_t bytes);

  [[nodiscard]] double bytes_per_second() const { return bytes_per_second_; }
  [[nodiscard]] bool throttled() const { return bytes_per_second_ > 0.0; }

  /// Total bytes moved since construction or the last reset_stats().
  [[nodiscard]] std::uint64_t bytes_moved() const {
    return bytes_moved_.load(std::memory_order_relaxed);
  }
  void reset_stats() { bytes_moved_.store(0, std::memory_order_relaxed); }

 private:
  const double bytes_per_second_;
  util::Mutex mutex_;
  /// When the last scheduled transfer ends (the serialized channel's state).
  Clock::time_point channel_free_ DCSN_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> bytes_moved_{0};
};

}  // namespace dcsn::render
