#include "render/rasterizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/simd.hpp"
#include "util/simd_dispatch.hpp"

namespace dcsn::render {

namespace {

// Top-left rule for y-down pixel coordinates with positive-area winding:
// top edges run in +x, left edges run in -y. Fragments exactly on a
// top-left edge are inside; on any other edge they belong to the neighbor.
inline bool is_top_left(float dx, float dy) {
  return (dy == 0.0f && dx > 0.0f) || dy < 0.0f;
}

// Edge function in winding order; it vanishes on the edge and is positive
// inside. `origin` is the value at the bbox origin pixel center
// (x_min + 0.5, y_min + 0.5); the value anywhere in the bbox is
//
//   value(kx, ky) = (origin + ky * dx) - kx * dy
//
// with kx = x - x_min, ky = y - y_min, every operation a single float
// multiply/add — *not* an accumulation. Direct evaluation makes the value
// at any pixel a pure function of (kx, ky), which is what lets the span
// algorithm solve a row for its covered interval and still classify every
// pixel bit-identically to the reference walk evaluating the same formula.
struct Edge {
  float dx = 0.0f, dy = 0.0f, origin = 0.0f;
  bool top_left = false;
};

inline float edge_row_value(const Edge& e, int ky) {
  return e.origin + static_cast<float>(ky) * e.dx;
}
inline float edge_value(const Edge& e, float row_value, int kx) {
  return row_value - static_cast<float>(kx) * e.dy;
}
inline bool edge_admits(const Edge& e, float value) {
  return value > 0.0f || (value == 0.0f && e.top_left);
}

// Everything the two fill algorithms share: canonical-winding vertices in
// global pixel coordinates, the target-clamped iteration bbox, the
// triangle-anchored canonical edges, 1/area.
//
// The canonical anchor (ax, ay) is the pixel at the triangle's own bbox
// corner, clamped only against a fixed frame-independent limit — never
// against the target rect. Every edge value and UV is evaluated relative to
// that anchor, so a fragment's coverage and value are pure functions of the
// triangle and the global pixel: any target containing the pixel (the full
// texture, or any tile of any decomposition) computes identical bits.
struct TriSetup {
  MeshVertex a, b, c;
  int x_min = 0, x_max = 0, y_min = 0, y_max = 0;  ///< global, inside target
  int ax = 0, ay = 0;                              ///< canonical anchor pixel
  int gx_end = 0;  ///< bbox's exclusive right end in anchor units
  Edge ab, bc, ca;
  float inv_area = 0.0f;
};

// The anchor clamp: 2^22. Keeps float(anchor) + 0.5 exact and every
// in-target (kx, ky) offset below 2^24, where int -> float is exact. Only
// insane off-screen geometry ever hits the clamp, and the clamp itself is
// target-independent.
constexpr float kAnchorLimit = 4194304.0f;

// How far beyond the target rect the span solver resolves a row's
// *geometric* boundaries. The UV sampler is rebased at the geometric
// in-range span start, which must not depend on where the target happens
// to clip the row — otherwise a tile would sample fragments a last-bit
// differently from the full texture. A triangle whose span overhangs the
// target by more than this (possible only for meshes wider than 4096 px —
// far beyond any real spot) falls back to a clamped, still-deterministic
// solve; the walk stays bounded either way.
constexpr int kGeomSlack = 4096;

// Rejects degenerate / non-finite / off-target triangles; fills `s` else.
bool setup_triangle(const RasterTarget& target, MeshVertex a, MeshVertex b,
                    MeshVertex c, TriSetup& s) {
  // Signed doubled area; positive means screen-clockwise (our canonical
  // winding). Flip b/c to normalize — bent-spot ribbons can fold over.
  float area2 = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  if (area2 == 0.0f || !std::isfinite(area2)) return false;
  if (area2 < 0.0f) {
    std::swap(b, c);
    area2 = -area2;
  }

  const float min_x = std::min({a.x, b.x, c.x});
  const float max_x = std::max({a.x, b.x, c.x});
  const float min_y = std::min({a.y, b.y, c.y});
  const float max_y = std::max({a.y, b.y, c.y});
  // The target's global pixel rect [tx0, tx1) x [ty0, ty1).
  const auto tx0 = static_cast<float>(target.origin_x);
  const auto ty0 = static_cast<float>(target.origin_y);
  const auto tx1 = static_cast<float>(target.origin_x + target.pixels.width());
  const auto ty1 = static_cast<float>(target.origin_y + target.pixels.height());
  // Reject off-target (or NaN-extent) boxes while still in float space; the
  // negated comparisons make any NaN land in the reject branch.
  if (!(min_x < tx1) || !(min_y < ty1) || !(max_x >= tx0) || !(max_y >= ty0)) {
    return false;
  }
  // Clamp to the target rect *before* the int cast: a far-off-screen vertex
  // (|coordinate| beyond ~2^31) would make the unclamped cast undefined.
  s.x_min = static_cast<int>(std::floor(std::clamp(min_x, tx0, tx1 - 1.0f)));
  s.x_max = static_cast<int>(std::ceil(std::clamp(max_x, tx0, tx1 - 1.0f)));
  s.y_min = static_cast<int>(std::floor(std::clamp(min_y, ty0, ty1 - 1.0f)));
  s.y_max = static_cast<int>(std::ceil(std::clamp(max_y, ty0, ty1 - 1.0f)));
  if (s.x_min > s.x_max || s.y_min > s.y_max) return false;

  // Target-independent canonical anchor, and the bbox's own right end in
  // anchor units (the span solver's geometric walk limit).
  s.ax = static_cast<int>(std::floor(std::clamp(min_x, -kAnchorLimit, kAnchorLimit)));
  s.ay = static_cast<int>(std::floor(std::clamp(min_y, -kAnchorLimit, kAnchorLimit)));
  s.gx_end =
      static_cast<int>(std::ceil(std::clamp(max_x, -kAnchorLimit, kAnchorLimit))) -
      s.ax + 1;

  // Watertightness: adjacent triangles traverse a shared edge in opposite
  // directions. Evaluating both against the *same* canonical endpoint
  // ordering makes their edge values exact negations of each other (every
  // operation in edge construction and evaluation is negation-symmetric in
  // IEEE arithmetic), so a pixel on the seam is inside exactly one triangle
  // (top-left rule breaks the e == 0 tie) and never falls through a
  // rounding gap. (Adjacent triangles share the bbox corner along the seam
  // in the mesh's row/column direction only; the anchor can differ — but
  // the negation symmetry holds per-pixel through the shared kx/ky offsets
  // of whichever triangle is evaluated, and the seam tests pin the
  // behaviour.)
  auto make_edge = [&](const MeshVertex& from, const MeshVertex& to) {
    const bool swapped = (to.x < from.x) || (to.x == from.x && to.y < from.y);
    const MeshVertex& lo = swapped ? to : from;
    const MeshVertex& hi = swapped ? from : to;
    const float cdx = hi.x - lo.x;
    const float cdy = hi.y - lo.y;
    const float px = static_cast<float>(s.ax) + 0.5f;
    const float py = static_cast<float>(s.ay) + 0.5f;
    const float canonical = cdx * (py - lo.y) - cdy * (px - lo.x);
    const float sign = swapped ? -1.0f : 1.0f;
    Edge edge;
    edge.dx = sign * cdx;
    edge.dy = sign * cdy;
    edge.origin = sign * canonical;
    edge.top_left = is_top_left(edge.dx, edge.dy);
    return edge;
  };
  s.ab = make_edge(a, b);  // weight for c
  s.bc = make_edge(b, c);  // weight for a
  s.ca = make_edge(c, a);  // weight for b
  s.a = a;
  s.b = b;
  s.c = c;
  s.inv_area = 1.0f / area2;
  return true;
}

// ---------------------------------------------------------------------------
// kReference: the bounding-box walk. Every bbox pixel evaluates all three
// edge functions; covered fragments take the branchy bounds-checked
// SpotProfile::sample. This is the algorithm the span kernel is proven
// against, kept selectable for equivalence tests and ablation benches.
// ---------------------------------------------------------------------------

template <BlendMode Mode>
void raster_tri_reference(const RasterTarget& target, MeshVertex va, MeshVertex vb,
                          MeshVertex vc, float weight, const SpotProfile& profile,
                          RasterStats& stats) {
  TriSetup s;
  if (!setup_triangle(target, va, vb, vc, s)) return;

  const auto pixels = target.pixels;
  std::int64_t fragments = 0;
  for (int y = s.y_min; y <= s.y_max; ++y) {
    const int ky = y - s.ay;
    const float r_ab = edge_row_value(s.ab, ky);
    const float r_bc = edge_row_value(s.bc, ky);
    const float r_ca = edge_row_value(s.ca, ky);
    float* row = &pixels(0, y - target.origin_y);
    for (int x = s.x_min; x <= s.x_max; ++x) {
      const int kx = x - s.ax;
      const int lx = x - target.origin_x;
      const float v_ab = edge_value(s.ab, r_ab, kx);
      const float v_bc = edge_value(s.bc, r_bc, kx);
      const float v_ca = edge_value(s.ca, r_ca, kx);
      if (edge_admits(s.ab, v_ab) && edge_admits(s.bc, v_bc) &&
          edge_admits(s.ca, v_ca)) {
        const float wa = v_bc * s.inv_area;
        const float wb = v_ca * s.inv_area;
        const float wc = v_ab * s.inv_area;
        const float u = wa * s.a.u + wb * s.b.u + wc * s.c.u;
        const float v = wa * s.a.v + wb * s.b.v + wc * s.c.v;
        const float texel = profile.sample(u, v);
        const float value = util::simd::quantize_contribution(weight * texel);
        if constexpr (Mode == BlendMode::kAdditive) {
          row[lx] += value;
        } else {
          row[lx] = std::max(row[lx], value);
        }
        ++fragments;
      }
    }
  }
  ++stats.triangles;
  stats.fragments += fragments;
  stats.pixels_visited += static_cast<std::int64_t>(s.x_max - s.x_min + 1) *
                          static_cast<std::int64_t>(s.y_max - s.y_min + 1);
}

// ---------------------------------------------------------------------------
// kSpan: scanline span solve + incremental row kernel.
// ---------------------------------------------------------------------------

// One edge's contribution to a row's covered interval, classified once per
// triangle by the sign of dy (fixed across the raster):
//
//   dy > 0 — edge values fall with kx, the admitted set is a prefix: the
//            edge bounds the span on the right;
//   dy < 0 — values rise with kx, admitted set is a suffix: a left bound;
//   dy == 0 — constant across the row: admits the whole row or none of it.
//
// Admission must be bit-identical to edge_admits(e, edge_value(e, r, kx)):
// edge_value = fl(r - m) with m = fl(kx * dy); fl(r - m) > 0 iff r > m and
// fl(r - m) == 0 iff r == m (IEEE subtraction preserves sign and is zero
// only for equal operands), so admission reduces to the exact comparison
// m < r, or m <= r on a top-left edge.
//
// `base + ky * slope` is the x-intercept of the edge's zero line in row ky
// (the per-triangle divisions buy division-free span seeding in every row).
// Its rounding never matters: the fixup loops in the solver decide with the
// exact comparison and only walk farther when the seed is off, which the
// ~1e-4-pixel seed error never causes in practice.
struct RowBound {
  float dy = 0.0f, dx = 0.0f, origin = 0.0f;
  bool top_left = false;
  double base = 0.0, slope = 0.0;
};

// Seed clamped to [lo, hi]; NaN (overflowed intercepts) seeds lo.
inline int seed_from(double est, int lo, int hi) {
  if (est >= static_cast<double>(hi)) return hi;
  if (est > static_cast<double>(lo)) return static_cast<int>(est);
  return lo;
}

template <BlendMode Mode>
void raster_tri_span(const RasterTarget& target, MeshVertex va, MeshVertex vb,
                     MeshVertex vc, float weight, const SpotProfile& profile,
                     RasterStats& stats) {
  TriSetup s;
  if (!setup_triangle(target, va, vb, vc, s)) return;

  const auto pixels = target.pixels;
  // The rendered kx window relative to the canonical anchor: [klo, kend).
  const int klo = s.x_min - s.ax;
  const int kend = s.x_max - s.ax + 1;
  // The *geometric* solve window: boundaries are resolved past the target
  // rect (bounded by the bbox and the slack) so the solved span — and the
  // UV rebase anchored at its in-range start — is a pure function of the
  // triangle and the row, identical for every target that clips it.
  const int gfloor = std::max(0, klo - kGeomSlack);
  const int gceil = std::min(s.gx_end, kend + kGeomSlack);

  // Classify the three edges once (dy's sign is fixed across the raster)
  // and precompute each sloped edge's x-intercept line.
  RowBound flat[3], left[3], right[3];
  int n_flat = 0, n_left = 0, n_right = 0;
  const Edge* edges[3] = {&s.ab, &s.bc, &s.ca};
  for (const Edge* e : edges) {
    RowBound b;
    b.dy = e->dy;
    b.dx = e->dx;
    b.origin = e->origin;
    b.top_left = e->top_left;
    if (e->dy == 0.0f) {
      flat[n_flat++] = b;
      continue;
    }
    b.base = static_cast<double>(e->origin) / static_cast<double>(e->dy);
    b.slope = static_cast<double>(e->dx) / static_cast<double>(e->dy);
    if (e->dy > 0.0f) {
      right[n_right++] = b;
    } else {
      left[n_left++] = b;
    }
  }

  // Barycentric weights are affine across the raster, so UV is evaluated as
  // U00 + ky*du_dy + kx*du_dx with per-triangle double constants: within
  // ~1 ulp of the exact affine function anywhere in the bbox, no error
  // accumulation along the row. (On needle triangles this is *more*
  // accurate than the reference's cancellation-noisy float barycentric —
  // the equivalence tolerance there absorbs the reference's own noise.)
  // d(v_bc)/dkx = -bc.dy weights a, d(v_bc)/dky = +bc.dx, and cyclically.
  const double inv_area = static_cast<double>(s.inv_area);
  const double U00 = (static_cast<double>(s.bc.origin) * s.a.u +
                      static_cast<double>(s.ca.origin) * s.b.u +
                      static_cast<double>(s.ab.origin) * s.c.u) *
                     inv_area;
  const double V00 = (static_cast<double>(s.bc.origin) * s.a.v +
                      static_cast<double>(s.ca.origin) * s.b.v +
                      static_cast<double>(s.ab.origin) * s.c.v) *
                     inv_area;
  const double du_dx = -(static_cast<double>(s.bc.dy) * s.a.u +
                         static_cast<double>(s.ca.dy) * s.b.u +
                         static_cast<double>(s.ab.dy) * s.c.u) *
                       inv_area;
  const double dv_dx = -(static_cast<double>(s.bc.dy) * s.a.v +
                         static_cast<double>(s.ca.dy) * s.b.v +
                         static_cast<double>(s.ab.dy) * s.c.v) *
                       inv_area;
  const double du_dy = (static_cast<double>(s.bc.dx) * s.a.u +
                        static_cast<double>(s.ca.dx) * s.b.u +
                        static_cast<double>(s.ab.dx) * s.c.u) *
                       inv_area;
  const double dv_dy = (static_cast<double>(s.bc.dx) * s.a.v +
                        static_cast<double>(s.ca.dx) * s.b.v +
                        static_cast<double>(s.ab.dx) * s.c.v) *
                       inv_area;

  SpotProfile::RowSampler sampler(profile, du_dx, dv_dx);

  // The runtime-dispatched kernel tier (scalar / SSE2 / AVX2 / NEON),
  // resolved once per triangle. Every tier is bit-identical to the scalar
  // expressions (util/simd_dispatch.hpp), so the dispatch choice can never
  // show in the pixels — only in the frame time.
  const util::simd::KernelTable& kernels = util::simd::kernels();

  // SoA span batch: the rows of this triangle accumulate as (dst, span,
  // length) triples on the stack and flush through the batched kernel, so
  // the tier pays its per-call setup once per flush, not once per row. The
  // triples address disjoint pixels (one span per row, flanks excluded), so
  // batched order is the per-row order bit for bit.
  constexpr int kSpanBatch = 64;
  float* batch_dst[kSpanBatch];
  util::simd::SampleSpan batch_span[kSpanBatch];
  std::uint32_t batch_len[kSpanBatch];
  int batched = 0;
  const auto flush = [&] {
    if (batched == 0) return;
    if constexpr (Mode == BlendMode::kAdditive) {
      kernels.sample_rows_add(batch_dst, batch_span, batch_len,
                              static_cast<std::size_t>(batched));
    } else {
      kernels.sample_rows_max(batch_dst, batch_span, batch_len,
                              static_cast<std::size_t>(batched));
    }
    batched = 0;
  };

  std::int64_t fragments = 0;
  std::int64_t visited = 0;
  for (int y = s.y_min; y <= s.y_max; ++y) {
    const int ky = y - s.ay;
    const float kyf = static_cast<float>(ky);

    // Solve the canonical edge functions for the *geometric* covered
    // interval [g_lo, g_hi) in anchor-relative kx units. Each bound's row
    // value r is the same float expression the reference walk evaluates
    // (edge_row_value), and each boundary is settled by the exact
    // admission comparison — coverage inside the target is bit-identical
    // to the reference by construction, and the boundaries themselves do
    // not depend on where the target clips the row.
    int g_lo = gfloor;
    int g_hi = gceil;
    for (int i = 0; i < n_flat; ++i) {
      const float r = flat[i].origin + kyf * flat[i].dx;
      if (!(r > 0.0f || (r == 0.0f && flat[i].top_left))) g_hi = gfloor;
    }
    for (int i = 0; i < n_right; ++i) {
      const RowBound& b = right[i];
      const float r = b.origin + kyf * b.dx;
      const auto admits = [&](int kx) {
        const float m = static_cast<float>(kx) * b.dy;
        return b.top_left ? (m <= r) : (m < r);
      };
      int k = seed_from(b.base + ky * b.slope, gfloor, gceil);
      while (k < gceil && admits(k)) ++k;
      while (k > gfloor && !admits(k - 1)) --k;
      g_hi = std::min(g_hi, k);
    }
    for (int i = 0; i < n_left; ++i) {
      const RowBound& b = left[i];
      const float r = b.origin + kyf * b.dx;
      const auto admits = [&](int kx) {
        const float m = static_cast<float>(kx) * b.dy;
        return b.top_left ? (m <= r) : (m < r);
      };
      int k = seed_from(b.base + ky * b.slope, gfloor, gceil);
      while (k < gceil && !admits(k)) ++k;
      while (k > gfloor && admits(k - 1)) --k;
      g_lo = std::max(g_lo, k);
    }
    if (g_lo >= g_hi) continue;

    // The rendered interval is the geometric span clipped to the target.
    const int lo = std::max(g_lo, klo);
    const int hi = std::min(g_hi, kend);
    if (lo >= hi) continue;
    const int n = hi - lo;
    fragments += n;
    visited += n;

    // Bounds handling, hoisted: fragments whose UV leaves [0,1)^2 (float
    // rounding at mesh seams, or genuinely off-profile geometry) sample
    // zero. u and v are affine in k, so the in-range set is a sub-interval
    // [s0, s1) of the geometric span; scanning inward from its ends with
    // the exact per-k predicate costs one check per *out-of-range*
    // fragment — almost always zero. Everything is evaluated at absolute
    // anchor-relative k (`u_row + k*du_dx`), never rebased on a clipped
    // span start, so the sampler state below is target-independent too.
    const double u_row = U00 + ky * du_dy;
    const double v_row = V00 + ky * dv_dy;
    const auto uv_in = [&](int k) {
      const double u = u_row + k * du_dx;
      const double v = v_row + k * dv_dx;
      return u >= 0.0 && u < 1.0 && v >= 0.0 && v < 1.0;
    };
    int s0 = g_lo;
    while (s0 < g_hi && !uv_in(s0)) ++s0;
    int s1 = g_hi;
    while (s1 > s0 && !uv_in(s1 - 1)) --s1;
    // Rendered portion of the in-range sub-span.
    const int r0 = std::clamp(s0, lo, hi);
    const int r1 = std::clamp(s1, r0, hi);

    float* dst = &pixels(0, y - target.origin_y) + (s.ax + lo - target.origin_x);
    if constexpr (Mode == BlendMode::kMaximum) {
      // The reference blends max(dst, quantize(weight * 0)) on zero-texel
      // fragments; replicate that on the out-of-range flanks.
      const float flank = util::simd::quantize_contribution(weight * 0.0f);
      kernels.max_with(dst, flank, static_cast<std::size_t>(r0 - lo));
      kernels.max_with(dst + (r1 - lo), flank, static_cast<std::size_t>(hi - r1));
    }
    if (r0 < r1) {
      // Rebase the sampler at the geometric in-range start s0 — in [0,1)^2
      // so the fixed-point position fits — then queue the whole rendered
      // sub-span as one SoA unit: the span() call hoists the per-fragment
      // UV stepping state (fixed-point position, step, weight) out of this
      // loop, and at flush the batched kernel blends straight-line over the
      // contiguous destination floats (staging texels in a stack buffer on
      // tiers without gathers, walking fragments eight-at-a-time on AVX2).
      // Rendered fragments sample at offsets r0-s0 .. r1-1-s0; every tier
      // reproduces the scalar quantize(weight * sample) bits exactly.
      sampler.start_row(u_row + s0 * du_dx, v_row + s0 * dv_dx);
      batch_dst[batched] = dst + (r0 - lo);
      batch_span[batched] = sampler.span(r0 - s0, weight);
      batch_len[batched] = static_cast<std::uint32_t>(r1 - r0);
      if (++batched == kSpanBatch) flush();
    }
  }
  flush();
  ++stats.triangles;
  stats.fragments += fragments;
  stats.pixels_visited += visited;
}

// ---------------------------------------------------------------------------
// Dispatch: blend mode and algorithm resolve to one instantiated kernel,
// selected once per mesh / per command buffer instead of per triangle.
// ---------------------------------------------------------------------------

using TriKernel = void (*)(const RasterTarget&, MeshVertex, MeshVertex, MeshVertex,
                           float, const SpotProfile&, RasterStats&);

TriKernel select_kernel(BlendMode mode, RasterAlgorithm algorithm) {
  const bool additive = mode == BlendMode::kAdditive;
  if (algorithm == RasterAlgorithm::kSpan) {
    return additive ? &raster_tri_span<BlendMode::kAdditive>
                    : &raster_tri_span<BlendMode::kMaximum>;
  }
  return additive ? &raster_tri_reference<BlendMode::kAdditive>
                  : &raster_tri_reference<BlendMode::kMaximum>;
}

void mesh_with_kernel(TriKernel kernel, const RasterTarget& target,
                      std::span<const MeshVertex> vertices, int cols, int rows,
                      float weight, const SpotProfile& profile, RasterStats& stats) {
  auto vertex = [&](int i, int j) -> const MeshVertex& {
    return vertices[static_cast<std::size_t>(j) * static_cast<std::size_t>(cols) +
                    static_cast<std::size_t>(i)];
  };
  for (int j = 0; j + 1 < rows; ++j) {
    for (int i = 0; i + 1 < cols; ++i) {
      const MeshVertex& v00 = vertex(i, j);
      const MeshVertex& v10 = vertex(i + 1, j);
      const MeshVertex& v11 = vertex(i + 1, j + 1);
      const MeshVertex& v01 = vertex(i, j + 1);
      kernel(target, v00, v10, v11, weight, profile, stats);
      kernel(target, v00, v11, v01, weight, profile, stats);
      ++stats.quads;
    }
  }
}

}  // namespace

void rasterize_triangle(const RasterTarget& target, const MeshVertex& a,
                        const MeshVertex& b, const MeshVertex& c, float weight,
                        const SpotProfile& profile, BlendMode mode,
                        RasterStats& stats) {
  select_kernel(mode, target.algorithm)(target, a, b, c, weight, profile, stats);
}

void rasterize_mesh(const RasterTarget& target, std::span<const MeshVertex> vertices,
                    int cols, int rows, float weight, const SpotProfile& profile,
                    BlendMode mode, RasterStats& stats) {
  mesh_with_kernel(select_kernel(mode, target.algorithm), target, vertices, cols,
                   rows, weight, profile, stats);
}

void rasterize_buffer(const RasterTarget& target, const CommandBuffer& buffer,
                      const SpotProfile& profile, BlendMode mode, RasterStats& stats) {
  const TriKernel kernel = select_kernel(mode, target.algorithm);
  for (const MeshHeader& h : buffer.meshes()) {
    mesh_with_kernel(kernel, target, buffer.vertices_of(h), h.cols, h.rows,
                     h.intensity, profile, stats);
  }
}

}  // namespace dcsn::render
