#include "render/rasterizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/simd.hpp"

namespace dcsn::render {

namespace {

// Top-left rule for y-down pixel coordinates with positive-area winding:
// top edges run in +x, left edges run in -y. Fragments exactly on a
// top-left edge are inside; on any other edge they belong to the neighbor.
inline bool is_top_left(float dx, float dy) {
  return (dy == 0.0f && dx > 0.0f) || dy < 0.0f;
}

// Edge function in winding order; it vanishes on the edge and is positive
// inside. `origin` is the value at the bbox origin pixel center
// (x_min + 0.5, y_min + 0.5); the value anywhere in the bbox is
//
//   value(kx, ky) = (origin + ky * dx) - kx * dy
//
// with kx = x - x_min, ky = y - y_min, every operation a single float
// multiply/add — *not* an accumulation. Direct evaluation makes the value
// at any pixel a pure function of (kx, ky), which is what lets the span
// algorithm solve a row for its covered interval and still classify every
// pixel bit-identically to the reference walk evaluating the same formula.
struct Edge {
  float dx = 0.0f, dy = 0.0f, origin = 0.0f;
  bool top_left = false;
};

inline float edge_row_value(const Edge& e, int ky) {
  return e.origin + static_cast<float>(ky) * e.dx;
}
inline float edge_value(const Edge& e, float row_value, int kx) {
  return row_value - static_cast<float>(kx) * e.dy;
}
inline bool edge_admits(const Edge& e, float value) {
  return value > 0.0f || (value == 0.0f && e.top_left);
}

// Everything the two fill algorithms share: target-local canonical-winding
// vertices, the clamped pixel bbox, the three canonical edges, 1/area.
struct TriSetup {
  MeshVertex a, b, c;
  int x_min = 0, x_max = 0, y_min = 0, y_max = 0;
  Edge ab, bc, ca;
  float inv_area = 0.0f;
};

// Rejects degenerate / non-finite / off-target triangles; fills `s` else.
bool setup_triangle(const RasterTarget& target, MeshVertex a, MeshVertex b,
                    MeshVertex c, TriSetup& s) {
  // Shift into target-local pixel coordinates.
  a.x -= target.origin_x;
  a.y -= target.origin_y;
  b.x -= target.origin_x;
  b.y -= target.origin_y;
  c.x -= target.origin_x;
  c.y -= target.origin_y;

  // Signed doubled area; positive means screen-clockwise (our canonical
  // winding). Flip b/c to normalize — bent-spot ribbons can fold over.
  float area2 = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  if (area2 == 0.0f || !std::isfinite(area2)) return false;
  if (area2 < 0.0f) {
    std::swap(b, c);
    area2 = -area2;
  }

  const float min_x = std::min({a.x, b.x, c.x});
  const float max_x = std::max({a.x, b.x, c.x});
  const float min_y = std::min({a.y, b.y, c.y});
  const float max_y = std::max({a.y, b.y, c.y});
  const auto fw = static_cast<float>(target.pixels.width());
  const auto fh = static_cast<float>(target.pixels.height());
  // Reject off-target (or NaN-extent) boxes while still in float space; the
  // negated comparisons make any NaN land in the reject branch.
  if (!(min_x < fw) || !(min_y < fh) || !(max_x >= 0.0f) || !(max_y >= 0.0f)) {
    return false;
  }
  // Clamp to the target rect *before* the int cast: a far-off-screen vertex
  // (|coordinate| beyond ~2^31) would make the unclamped cast undefined.
  s.x_min = static_cast<int>(std::floor(std::clamp(min_x, 0.0f, fw - 1.0f)));
  s.x_max = static_cast<int>(std::ceil(std::clamp(max_x, 0.0f, fw - 1.0f)));
  s.y_min = static_cast<int>(std::floor(std::clamp(min_y, 0.0f, fh - 1.0f)));
  s.y_max = static_cast<int>(std::ceil(std::clamp(max_y, 0.0f, fh - 1.0f)));
  if (s.x_min > s.x_max || s.y_min > s.y_max) return false;

  // Watertightness: adjacent triangles traverse a shared edge in opposite
  // directions. Evaluating both against the *same* canonical endpoint
  // ordering makes their edge values exact negations of each other (every
  // operation in edge construction and evaluation is negation-symmetric in
  // IEEE arithmetic), so a pixel on the seam is inside exactly one triangle
  // (top-left rule breaks the e == 0 tie) and never falls through a
  // rounding gap.
  auto make_edge = [&](const MeshVertex& from, const MeshVertex& to) {
    const bool swapped = (to.x < from.x) || (to.x == from.x && to.y < from.y);
    const MeshVertex& lo = swapped ? to : from;
    const MeshVertex& hi = swapped ? from : to;
    const float cdx = hi.x - lo.x;
    const float cdy = hi.y - lo.y;
    const float px = static_cast<float>(s.x_min) + 0.5f;
    const float py = static_cast<float>(s.y_min) + 0.5f;
    const float canonical = cdx * (py - lo.y) - cdy * (px - lo.x);
    const float sign = swapped ? -1.0f : 1.0f;
    Edge edge;
    edge.dx = sign * cdx;
    edge.dy = sign * cdy;
    edge.origin = sign * canonical;
    edge.top_left = is_top_left(edge.dx, edge.dy);
    return edge;
  };
  s.ab = make_edge(a, b);  // weight for c
  s.bc = make_edge(b, c);  // weight for a
  s.ca = make_edge(c, a);  // weight for b
  s.a = a;
  s.b = b;
  s.c = c;
  s.inv_area = 1.0f / area2;
  return true;
}

// ---------------------------------------------------------------------------
// kReference: the bounding-box walk. Every bbox pixel evaluates all three
// edge functions; covered fragments take the branchy bounds-checked
// SpotProfile::sample. This is the algorithm the span kernel is proven
// against, kept selectable for equivalence tests and ablation benches.
// ---------------------------------------------------------------------------

template <BlendMode Mode>
void raster_tri_reference(const RasterTarget& target, MeshVertex va, MeshVertex vb,
                          MeshVertex vc, float weight, const SpotProfile& profile,
                          RasterStats& stats) {
  TriSetup s;
  if (!setup_triangle(target, va, vb, vc, s)) return;

  const auto pixels = target.pixels;
  std::int64_t fragments = 0;
  for (int y = s.y_min; y <= s.y_max; ++y) {
    const int ky = y - s.y_min;
    const float r_ab = edge_row_value(s.ab, ky);
    const float r_bc = edge_row_value(s.bc, ky);
    const float r_ca = edge_row_value(s.ca, ky);
    float* row = &pixels(0, y);
    for (int x = s.x_min; x <= s.x_max; ++x) {
      const int kx = x - s.x_min;
      const float v_ab = edge_value(s.ab, r_ab, kx);
      const float v_bc = edge_value(s.bc, r_bc, kx);
      const float v_ca = edge_value(s.ca, r_ca, kx);
      if (edge_admits(s.ab, v_ab) && edge_admits(s.bc, v_bc) &&
          edge_admits(s.ca, v_ca)) {
        const float wa = v_bc * s.inv_area;
        const float wb = v_ca * s.inv_area;
        const float wc = v_ab * s.inv_area;
        const float u = wa * s.a.u + wb * s.b.u + wc * s.c.u;
        const float v = wa * s.a.v + wb * s.b.v + wc * s.c.v;
        const float texel = profile.sample(u, v);
        if constexpr (Mode == BlendMode::kAdditive) {
          row[x] += weight * texel;
        } else {
          row[x] = std::max(row[x], weight * texel);
        }
        ++fragments;
      }
    }
  }
  ++stats.triangles;
  stats.fragments += fragments;
  stats.pixels_visited += static_cast<std::int64_t>(s.x_max - s.x_min + 1) *
                          static_cast<std::int64_t>(s.y_max - s.y_min + 1);
}

// ---------------------------------------------------------------------------
// kSpan: scanline span solve + incremental row kernel.
// ---------------------------------------------------------------------------

// One edge's contribution to a row's covered interval, classified once per
// triangle by the sign of dy (fixed across the raster):
//
//   dy > 0 — edge values fall with kx, the admitted set is a prefix: the
//            edge bounds the span on the right;
//   dy < 0 — values rise with kx, admitted set is a suffix: a left bound;
//   dy == 0 — constant across the row: admits the whole row or none of it.
//
// Admission must be bit-identical to edge_admits(e, edge_value(e, r, kx)):
// edge_value = fl(r - m) with m = fl(kx * dy); fl(r - m) > 0 iff r > m and
// fl(r - m) == 0 iff r == m (IEEE subtraction preserves sign and is zero
// only for equal operands), so admission reduces to the exact comparison
// m < r, or m <= r on a top-left edge.
//
// `base + ky * slope` is the x-intercept of the edge's zero line in row ky
// (the per-triangle divisions buy division-free span seeding in every row).
// Its rounding never matters: the fixup loops in the solver decide with the
// exact comparison and only walk farther when the seed is off, which the
// ~1e-4-pixel seed error never causes in practice.
struct RowBound {
  float dy = 0.0f, dx = 0.0f, origin = 0.0f;
  bool top_left = false;
  double base = 0.0, slope = 0.0;
};

// Seed clamped to [0, len]; NaN (overflowed intercepts) seeds 0.
inline int seed_from(double est, int len) {
  if (est >= static_cast<double>(len)) return len;
  if (est > 0.0) return static_cast<int>(est);
  return 0;
}

template <BlendMode Mode>
void raster_tri_span(const RasterTarget& target, MeshVertex va, MeshVertex vb,
                     MeshVertex vc, float weight, const SpotProfile& profile,
                     RasterStats& stats) {
  TriSetup s;
  if (!setup_triangle(target, va, vb, vc, s)) return;

  const auto pixels = target.pixels;
  const int len = s.x_max - s.x_min + 1;

  // Classify the three edges once (dy's sign is fixed across the raster)
  // and precompute each sloped edge's x-intercept line.
  RowBound flat[3], left[3], right[3];
  int n_flat = 0, n_left = 0, n_right = 0;
  const Edge* edges[3] = {&s.ab, &s.bc, &s.ca};
  for (const Edge* e : edges) {
    RowBound b;
    b.dy = e->dy;
    b.dx = e->dx;
    b.origin = e->origin;
    b.top_left = e->top_left;
    if (e->dy == 0.0f) {
      flat[n_flat++] = b;
      continue;
    }
    b.base = static_cast<double>(e->origin) / static_cast<double>(e->dy);
    b.slope = static_cast<double>(e->dx) / static_cast<double>(e->dy);
    if (e->dy > 0.0f) {
      right[n_right++] = b;
    } else {
      left[n_left++] = b;
    }
  }

  // Barycentric weights are affine across the raster, so UV is evaluated as
  // U00 + ky*du_dy + kx*du_dx with per-triangle double constants: within
  // ~1 ulp of the exact affine function anywhere in the bbox, no error
  // accumulation along the row. (On needle triangles this is *more*
  // accurate than the reference's cancellation-noisy float barycentric —
  // the equivalence tolerance there absorbs the reference's own noise.)
  // d(v_bc)/dkx = -bc.dy weights a, d(v_bc)/dky = +bc.dx, and cyclically.
  const double inv_area = static_cast<double>(s.inv_area);
  const double U00 = (static_cast<double>(s.bc.origin) * s.a.u +
                      static_cast<double>(s.ca.origin) * s.b.u +
                      static_cast<double>(s.ab.origin) * s.c.u) *
                     inv_area;
  const double V00 = (static_cast<double>(s.bc.origin) * s.a.v +
                      static_cast<double>(s.ca.origin) * s.b.v +
                      static_cast<double>(s.ab.origin) * s.c.v) *
                     inv_area;
  const double du_dx = -(static_cast<double>(s.bc.dy) * s.a.u +
                         static_cast<double>(s.ca.dy) * s.b.u +
                         static_cast<double>(s.ab.dy) * s.c.u) *
                       inv_area;
  const double dv_dx = -(static_cast<double>(s.bc.dy) * s.a.v +
                         static_cast<double>(s.ca.dy) * s.b.v +
                         static_cast<double>(s.ab.dy) * s.c.v) *
                       inv_area;
  const double du_dy = (static_cast<double>(s.bc.dx) * s.a.u +
                        static_cast<double>(s.ca.dx) * s.b.u +
                        static_cast<double>(s.ab.dx) * s.c.u) *
                       inv_area;
  const double dv_dy = (static_cast<double>(s.bc.dx) * s.a.v +
                        static_cast<double>(s.ca.dx) * s.b.v +
                        static_cast<double>(s.ab.dx) * s.c.v) *
                       inv_area;

  SpotProfile::RowSampler sampler(profile, du_dx, dv_dx);

  constexpr int kRowTile = 256;    // texel staging for the simd blend kernels
  constexpr int kStagedSpan = 16;  // below this, fused blending wins
  float texels[kRowTile];

  std::int64_t fragments = 0;
  std::int64_t visited = 0;
  for (int y = s.y_min; y <= s.y_max; ++y) {
    const int ky = y - s.y_min;
    const float kyf = static_cast<float>(ky);

    // Solve the canonical edge functions for the covered interval [lo, hi).
    // Each bound's row value r is the same float expression the reference
    // walk evaluates (edge_row_value), and each boundary is settled by the
    // exact admission comparison — coverage is bit-identical by
    // construction.
    int lo = 0;
    int hi = len;
    for (int i = 0; i < n_flat; ++i) {
      const float r = flat[i].origin + kyf * flat[i].dx;
      if (!(r > 0.0f || (r == 0.0f && flat[i].top_left))) hi = 0;
    }
    for (int i = 0; i < n_right; ++i) {
      const RowBound& b = right[i];
      const float r = b.origin + kyf * b.dx;
      const auto admits = [&](int kx) {
        const float m = static_cast<float>(kx) * b.dy;
        return b.top_left ? (m <= r) : (m < r);
      };
      int k = seed_from(b.base + ky * b.slope, len);
      while (k < len && admits(k)) ++k;
      while (k > 0 && !admits(k - 1)) --k;
      hi = std::min(hi, k);
    }
    for (int i = 0; i < n_left; ++i) {
      const RowBound& b = left[i];
      const float r = b.origin + kyf * b.dx;
      const auto admits = [&](int kx) {
        const float m = static_cast<float>(kx) * b.dy;
        return b.top_left ? (m <= r) : (m < r);
      };
      int k = seed_from(b.base + ky * b.slope, len);
      while (k < len && !admits(k)) ++k;
      while (k > 0 && admits(k - 1)) --k;
      lo = std::max(lo, k);
    }
    if (lo >= hi) continue;

    const int n = hi - lo;
    fragments += n;
    visited += n;

    // UV at the span's first pixel, from the per-triangle affine form.
    const double u0 = U00 + ky * du_dy + lo * du_dx;
    const double v0 = V00 + ky * dv_dy + lo * dv_dx;

    // Bounds handling, hoisted: fragments whose UV leaves [0,1)^2 (float
    // rounding at mesh seams, or genuinely off-profile geometry) sample
    // zero. u and v are affine in k, so the in-range set is a sub-interval
    // [s0, s1); scanning inward from the span ends with the exact per-k
    // predicate costs one check per *out-of-range* fragment — almost always
    // zero — and leaves the interior loop with no bounds checks at all.
    const auto uv_in = [&](int k) {
      const double u = u0 + k * du_dx;
      const double v = v0 + k * dv_dx;
      return u >= 0.0 && u < 1.0 && v >= 0.0 && v < 1.0;
    };
    int s0 = 0;
    while (s0 < n && !uv_in(s0)) ++s0;
    int s1 = n;
    while (s1 > s0 && !uv_in(s1 - 1)) --s1;

    float* dst = &pixels(0, y) + s.x_min + lo;
    if constexpr (Mode == BlendMode::kMaximum) {
      // The reference blends max(dst, weight * 0) on zero-texel fragments;
      // replicate that on the out-of-range flanks.
      util::simd::max_with(dst, weight * 0.0f, s0);
      util::simd::max_with(dst + s1, weight * 0.0f, n - s1);
    }
    if (s0 < s1) {
      const int m = s1 - s0;
      // Rebase the sampler to the in-range sub-span start, which is in
      // [0,1)^2 so the fixed-point position fits (and, for m >= 2, the end
      // being in range bounds the step — see RowSampler).
      sampler.start_row(u0 + s0 * du_dx, v0 + s0 * dv_dx);
      float* frag = dst + s0;
      if (m < kStagedSpan) {
        // Short span: fused sample+blend, no staging overhead.
        for (int k = 0; k < m; ++k) {
          const float value = weight * sampler.sample_at(k);
          if constexpr (Mode == BlendMode::kAdditive) {
            frag[k] += value;
          } else {
            frag[k] = frag[k] < value ? value : frag[k];
          }
        }
      } else {
        // Long span: stage texels, then blend with the simd kernels.
        int k = 0;
        while (k < m) {
          const int chunk = std::min(kRowTile, m - k);
#pragma omp simd
          for (int i = 0; i < chunk; ++i) texels[i] = sampler.sample_at(k + i);
          if constexpr (Mode == BlendMode::kAdditive) {
            util::simd::add_scaled(frag + k, texels, weight, chunk);
          } else {
            util::simd::max_scaled(frag + k, texels, weight, chunk);
          }
          k += chunk;
        }
      }
    }
  }
  ++stats.triangles;
  stats.fragments += fragments;
  stats.pixels_visited += visited;
}

// ---------------------------------------------------------------------------
// Dispatch: blend mode and algorithm resolve to one instantiated kernel,
// selected once per mesh / per command buffer instead of per triangle.
// ---------------------------------------------------------------------------

using TriKernel = void (*)(const RasterTarget&, MeshVertex, MeshVertex, MeshVertex,
                           float, const SpotProfile&, RasterStats&);

TriKernel select_kernel(BlendMode mode, RasterAlgorithm algorithm) {
  const bool additive = mode == BlendMode::kAdditive;
  if (algorithm == RasterAlgorithm::kSpan) {
    return additive ? &raster_tri_span<BlendMode::kAdditive>
                    : &raster_tri_span<BlendMode::kMaximum>;
  }
  return additive ? &raster_tri_reference<BlendMode::kAdditive>
                  : &raster_tri_reference<BlendMode::kMaximum>;
}

void mesh_with_kernel(TriKernel kernel, const RasterTarget& target,
                      std::span<const MeshVertex> vertices, int cols, int rows,
                      float weight, const SpotProfile& profile, RasterStats& stats) {
  auto vertex = [&](int i, int j) -> const MeshVertex& {
    return vertices[static_cast<std::size_t>(j) * static_cast<std::size_t>(cols) +
                    static_cast<std::size_t>(i)];
  };
  for (int j = 0; j + 1 < rows; ++j) {
    for (int i = 0; i + 1 < cols; ++i) {
      const MeshVertex& v00 = vertex(i, j);
      const MeshVertex& v10 = vertex(i + 1, j);
      const MeshVertex& v11 = vertex(i + 1, j + 1);
      const MeshVertex& v01 = vertex(i, j + 1);
      kernel(target, v00, v10, v11, weight, profile, stats);
      kernel(target, v00, v11, v01, weight, profile, stats);
      ++stats.quads;
    }
  }
}

}  // namespace

void rasterize_triangle(const RasterTarget& target, const MeshVertex& a,
                        const MeshVertex& b, const MeshVertex& c, float weight,
                        const SpotProfile& profile, BlendMode mode,
                        RasterStats& stats) {
  select_kernel(mode, target.algorithm)(target, a, b, c, weight, profile, stats);
}

void rasterize_mesh(const RasterTarget& target, std::span<const MeshVertex> vertices,
                    int cols, int rows, float weight, const SpotProfile& profile,
                    BlendMode mode, RasterStats& stats) {
  mesh_with_kernel(select_kernel(mode, target.algorithm), target, vertices, cols,
                   rows, weight, profile, stats);
}

void rasterize_buffer(const RasterTarget& target, const CommandBuffer& buffer,
                      const SpotProfile& profile, BlendMode mode, RasterStats& stats) {
  const TriKernel kernel = select_kernel(mode, target.algorithm);
  for (const MeshHeader& h : buffer.meshes()) {
    mesh_with_kernel(kernel, target, buffer.vertices_of(h), h.cols, h.rows,
                     h.intensity, profile, stats);
  }
}

}  // namespace dcsn::render
