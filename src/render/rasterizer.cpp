#include "render/rasterizer.hpp"

#include <algorithm>
#include <cmath>

namespace dcsn::render {

namespace {

// Top-left rule for y-down pixel coordinates with positive-area winding:
// top edges run in +x, left edges run in -y. Fragments exactly on a
// top-left edge are inside; on any other edge they belong to the neighbor.
inline bool is_top_left(float dx, float dy) {
  return (dy == 0.0f && dx > 0.0f) || dy < 0.0f;
}

template <BlendMode Mode>
void raster_tri_impl(const RasterTarget& target, MeshVertex a, MeshVertex b,
                     MeshVertex c, float weight, const SpotProfile& profile,
                     RasterStats& stats) {
  // Shift into target-local pixel coordinates.
  a.x -= target.origin_x;
  a.y -= target.origin_y;
  b.x -= target.origin_x;
  b.y -= target.origin_y;
  c.x -= target.origin_x;
  c.y -= target.origin_y;

  // Signed doubled area; positive means screen-clockwise (our canonical
  // winding). Flip b/c to normalize — bent-spot ribbons can fold over.
  float area2 = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  if (area2 == 0.0f || !std::isfinite(area2)) return;
  if (area2 < 0.0f) {
    std::swap(b, c);
    area2 = -area2;
  }

  const auto pixels = target.pixels;
  const float min_x = std::min({a.x, b.x, c.x});
  const float max_x = std::max({a.x, b.x, c.x});
  const float min_y = std::min({a.y, b.y, c.y});
  const float max_y = std::max({a.y, b.y, c.y});
  const auto fw = static_cast<float>(pixels.width());
  const auto fh = static_cast<float>(pixels.height());
  // Reject off-target (or NaN-extent) boxes while still in float space; the
  // negated comparisons make any NaN land in the reject branch.
  if (!(min_x < fw) || !(min_y < fh) || !(max_x >= 0.0f) || !(max_y >= 0.0f)) return;
  // Clamp to the target rect *before* the int cast: a far-off-screen vertex
  // (|coordinate| beyond ~2^31) would make the unclamped cast undefined.
  const int x_min = static_cast<int>(std::floor(std::clamp(min_x, 0.0f, fw - 1.0f)));
  const int x_max = static_cast<int>(std::ceil(std::clamp(max_x, 0.0f, fw - 1.0f)));
  const int y_min = static_cast<int>(std::floor(std::clamp(min_y, 0.0f, fh - 1.0f)));
  const int y_max = static_cast<int>(std::ceil(std::clamp(max_y, 0.0f, fh - 1.0f)));
  if (x_min > x_max || y_min > y_max) return;

  // Edge functions in winding order; e_ab vanishes on edge a->b and is
  // positive inside. Values step by the edge deltas across the raster.
  //
  // Watertightness: adjacent triangles traverse a shared edge in opposite
  // directions. Evaluating both against the *same* canonical endpoint
  // ordering makes their edge values exact negations of each other, so a
  // pixel on the seam is inside exactly one triangle (top-left rule breaks
  // the e == 0 tie) and never falls through a rounding gap.
  struct Edge {
    float dx, dy, row_value;
    bool top_left;
  };
  auto make_edge = [&](const MeshVertex& s, const MeshVertex& e) {
    const bool swapped = (e.x < s.x) || (e.x == s.x && e.y < s.y);
    const MeshVertex& lo = swapped ? e : s;
    const MeshVertex& hi = swapped ? s : e;
    const float cdx = hi.x - lo.x;
    const float cdy = hi.y - lo.y;
    const float px = static_cast<float>(x_min) + 0.5f;
    const float py = static_cast<float>(y_min) + 0.5f;
    const float canonical = cdx * (py - lo.y) - cdy * (px - lo.x);
    // Negation is exact in IEEE arithmetic, so stepping the signed value by
    // the signed deltas keeps the two traversals exact mirrors.
    const float sign = swapped ? -1.0f : 1.0f;
    Edge edge;
    edge.dx = sign * cdx;
    edge.dy = sign * cdy;
    edge.row_value = sign * canonical;
    edge.top_left = is_top_left(edge.dx, edge.dy);
    return edge;
  };
  Edge e_ab = make_edge(a, b);  // weight for c
  Edge e_bc = make_edge(b, c);  // weight for a
  Edge e_ca = make_edge(c, a);  // weight for b

  const float inv_area = 1.0f / area2;
  std::int64_t fragments = 0;

  for (int y = y_min; y <= y_max; ++y) {
    float v_ab = e_ab.row_value;
    float v_bc = e_bc.row_value;
    float v_ca = e_ca.row_value;
    float* row = &pixels(0, y);
    for (int x = x_min; x <= x_max; ++x) {
      const bool in_ab = v_ab > 0.0f || (v_ab == 0.0f && e_ab.top_left);
      const bool in_bc = v_bc > 0.0f || (v_bc == 0.0f && e_bc.top_left);
      const bool in_ca = v_ca > 0.0f || (v_ca == 0.0f && e_ca.top_left);
      if (in_ab && in_bc && in_ca) {
        const float wa = v_bc * inv_area;
        const float wb = v_ca * inv_area;
        const float wc = v_ab * inv_area;
        const float u = wa * a.u + wb * b.u + wc * c.u;
        const float v = wa * a.v + wb * b.v + wc * c.v;
        const float texel = profile.sample(u, v);
        if constexpr (Mode == BlendMode::kAdditive) {
          row[x] += weight * texel;
        } else {
          row[x] = std::max(row[x], weight * texel);
        }
        ++fragments;
      }
      // de/dx = -dy
      v_ab -= e_ab.dy;
      v_bc -= e_bc.dy;
      v_ca -= e_ca.dy;
    }
    // de/dy = +dx
    e_ab.row_value += e_ab.dx;
    e_bc.row_value += e_bc.dx;
    e_ca.row_value += e_ca.dx;
  }
  ++stats.triangles;
  stats.fragments += fragments;
}

}  // namespace

void rasterize_triangle(const RasterTarget& target, const MeshVertex& a,
                        const MeshVertex& b, const MeshVertex& c, float weight,
                        const SpotProfile& profile, BlendMode mode,
                        RasterStats& stats) {
  if (mode == BlendMode::kAdditive) {
    raster_tri_impl<BlendMode::kAdditive>(target, a, b, c, weight, profile, stats);
  } else {
    raster_tri_impl<BlendMode::kMaximum>(target, a, b, c, weight, profile, stats);
  }
}

void rasterize_mesh(const RasterTarget& target, std::span<const MeshVertex> vertices,
                    int cols, int rows, float weight, const SpotProfile& profile,
                    BlendMode mode, RasterStats& stats) {
  auto vertex = [&](int i, int j) -> const MeshVertex& {
    return vertices[static_cast<std::size_t>(j) * static_cast<std::size_t>(cols) +
                    static_cast<std::size_t>(i)];
  };
  for (int j = 0; j + 1 < rows; ++j) {
    for (int i = 0; i + 1 < cols; ++i) {
      const MeshVertex& v00 = vertex(i, j);
      const MeshVertex& v10 = vertex(i + 1, j);
      const MeshVertex& v11 = vertex(i + 1, j + 1);
      const MeshVertex& v01 = vertex(i, j + 1);
      rasterize_triangle(target, v00, v10, v11, weight, profile, mode, stats);
      rasterize_triangle(target, v00, v11, v01, weight, profile, mode, stats);
      ++stats.quads;
    }
  }
}

void rasterize_buffer(const RasterTarget& target, const CommandBuffer& buffer,
                      const SpotProfile& profile, BlendMode mode, RasterStats& stats) {
  for (const MeshHeader& h : buffer.meshes()) {
    rasterize_mesh(target, buffer.vertices_of(h), h.cols, h.rows, h.intensity,
                   profile, mode, stats);
  }
}

}  // namespace dcsn::render
