#include "render/command_buffer.hpp"

#include "util/error.hpp"

namespace dcsn::render {

void CommandBuffer::reserve(std::size_t spots, std::size_t vertices_per_spot) {
  headers_.reserve(spots);
  vertices_.reserve(spots * vertices_per_spot);
}

std::span<MeshVertex> CommandBuffer::add_mesh(float intensity, int cols, int rows) {
  DCSN_CHECK(cols >= 2 && rows >= 2, "a mesh needs at least 2x2 vertices");
  DCSN_CHECK(cols <= 0xffff && rows <= 0xffff, "mesh dimensions exceed 16 bits");
  MeshHeader h;
  h.intensity = intensity;
  h.cols = static_cast<std::uint16_t>(cols);
  h.rows = static_cast<std::uint16_t>(rows);
  h.vertex_offset = static_cast<std::uint32_t>(vertices_.size());
  const std::size_t count =
      static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows);
  vertices_.resize(vertices_.size() + count);
  headers_.push_back(h);
  return {vertices_.data() + h.vertex_offset, count};
}

void CommandBuffer::clear() {
  headers_.clear();
  vertices_.clear();
}

}  // namespace dcsn::render
