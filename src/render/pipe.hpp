// The simulated graphics pipe: an asynchronous rendering coprocessor.
//
// The paper views each InfiniteReality pipe as an OpenGL state machine that
// executes concurrently with the CPUs (fig. 4). GraphicsPipe reproduces that
// contract in software:
//
//   * a dedicated server thread owns a private render-target Framebuffer;
//   * commands (state changes, clears, vertex buffers, fences) stream
//     through a bounded queue, so submission overlaps execution — the
//     max(genP, genT) overlap of eq. 2.1 rather than the sum;
//   * a bound spot profile and blend mode form the pipe's state; changing
//     state costs a configurable synchronization latency, modeling the
//     geometry-processor sync the paper avoids by transforming spots on the
//     CPUs (§4, footnote 1);
//   * vertex buffers arrive via the shared Bus, and read_back() returns the
//     finished texture across the same bus (the sequential gather of §3).
//
// Per-pipe counters expose genT (busy seconds), bytes, vertices, quads,
// fragments, state changes and stall time; the benches print these to
// reproduce the paper's bandwidth observations.
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <variant>

#include "render/bus.hpp"
#include "render/command_buffer.hpp"
#include "render/framebuffer.hpp"
#include "render/rasterizer.hpp"
#include "render/spot_profile.hpp"
#include "util/queue.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_annotations.hpp"

namespace dcsn::render {

struct PipeConfig {
  int width = 512;
  int height = 512;
  /// Latency of one state change (texture bind, blend switch, matrix load).
  /// The default models a fraction of the IR's geometry-processor sync.
  double state_change_seconds = 20e-6;
  std::size_t queue_capacity = 64;
  /// Optional slowdown of rasterization (>1 = slower pipe). Used by the
  /// resource-balance ablation to move the saturation point; 1.0 = raw
  /// software rasterizer speed.
  double raster_cost_multiplier = 1.0;
  /// Triangle fill algorithm for every draw on this pipe. kSpan is the
  /// production hot path; kReference keeps the bbox walk selectable for
  /// equivalence testing and the bench_raster_kernel ablation.
  RasterAlgorithm raster_algorithm = RasterAlgorithm::kSpan;
};

struct PipeStats {
  double busy_seconds = 0.0;        ///< genT: rasterization + state changes
  double raster_seconds = 0.0;      ///< rasterization only
  double state_seconds = 0.0;       ///< state-change sync latency only
  double stall_seconds = 0.0;       ///< waited on bus arrivals
  std::int64_t buffers = 0;
  std::int64_t vertices = 0;
  std::int64_t state_changes = 0;
  std::uint64_t bytes_received = 0;
  RasterStats raster;
};

class GraphicsPipe {
 public:
  /// Starts the server thread. `bus` is shared by all pipes and may be
  /// null for an unthrottled direct connection.
  GraphicsPipe(PipeConfig config, std::shared_ptr<Bus> bus, int pipe_id = 0);
  ~GraphicsPipe();

  GraphicsPipe(const GraphicsPipe&) = delete;
  GraphicsPipe& operator=(const GraphicsPipe&) = delete;

  // --- command stream (call from the owning master thread) ---

  /// Binds a spot profile (a state change).
  void bind_profile(std::shared_ptr<const SpotProfile> profile);

  /// Sets the blend mode (a state change).
  void set_blend_mode(BlendMode mode);

  /// Sets the viewport origin so geometry in full-texture coordinates lands
  /// in this pipe's (smaller) target — used by texture tiling. Integral
  /// pixel origins keep tiled rasterization bit-identical to the
  /// full-texture path (see render/rasterizer.hpp).
  void set_viewport_origin(int x, int y);

  /// Reallocates the render target (a state change; the old contents are
  /// discarded). Lets the tiled engine reshape its regions between frames
  /// when the cost-balanced tiling moves a cut.
  void resize_target(int width, int height);

  /// Clears the render target to `value`.
  void clear(float value = 0.0f);

  /// Streams a buffer of transformed spot geometry. The buffer is moved;
  /// execution begins once the simulated bus delivers it.
  void submit(CommandBuffer buffer);

  /// Issues `count` redundant state changes before the buffer — the
  /// transform-on-pipe ablation (what the paper avoided by transforming
  /// spots in software).
  void submit_with_state_changes(CommandBuffer buffer, int count);

  /// Blocks until every previously submitted command has executed.
  void finish();

  /// finish() + copy the render target back across the bus.
  [[nodiscard]] Framebuffer read_back();

  /// read_back() into a caller-provided buffer (reshaped to the target's
  /// dimensions, reusing its allocation) — the pooled-readback path: with a
  /// render::FramebufferPool buffer this makes the sequential gather
  /// allocation-free in steady state.
  void read_back_into(Framebuffer& out);

  /// Rebinds the host<->pipe bus. Part of the pipe-pool checkout protocol:
  /// pooled pipes are reused across sessions that each keep their own Bus
  /// model. Caller-thread state (the bus is consulted on submit/read_back,
  /// never by the server thread); call only while no commands are in
  /// flight, i.e. between sessions.
  void set_bus(std::shared_ptr<Bus> bus) { bus_ = std::move(bus); }

  // --- introspection ---

  [[nodiscard]] const PipeConfig& config() const { return config_; }
  [[nodiscard]] int id() const { return pipe_id_; }

  /// Snapshot of the counters. Call after finish() for exact totals.
  [[nodiscard]] PipeStats stats() const;
  void reset_stats();

 private:
  struct CmdBindProfile {
    std::shared_ptr<const SpotProfile> profile;
  };
  struct CmdBlendMode {
    BlendMode mode;
  };
  struct CmdViewport {
    int x, y;
  };
  struct CmdResize {
    int width, height;
  };
  struct CmdClear {
    float value;
  };
  struct CmdDraw {
    CommandBuffer buffer;
    Bus::Clock::time_point available_at;
    int extra_state_changes;
  };
  struct CmdFence {
    std::promise<void> done;
  };
  using Command = std::variant<CmdBindProfile, CmdBlendMode, CmdViewport, CmdResize,
                               CmdClear, CmdDraw, CmdFence>;

  void server_loop(std::stop_token stop);
  void execute(Command& cmd);
  void pay_state_change();

  // Caller-thread state: touched only by the owning master thread (the
  // command-stream contract above), never by the server.
  PipeConfig config_;       // lock-lint: unguarded(caller thread only)
  std::shared_ptr<Bus> bus_;  // lock-lint: unguarded(caller thread only)
  int pipe_id_;             // lock-lint: unguarded(immutable after construction)

  // Server-thread state: touched only inside execute(), which runs solely on
  // server_ — ordering with the caller is the queue's synchronization.
  Framebuffer target_;      // lock-lint: unguarded(server thread only)
  std::shared_ptr<const SpotProfile> bound_profile_;  // lock-lint: unguarded(server thread only)
  BlendMode blend_mode_ = BlendMode::kAdditive;  // lock-lint: unguarded(server thread only)
  int viewport_x_ = 0;      // lock-lint: unguarded(server thread only)
  int viewport_y_ = 0;      // lock-lint: unguarded(server thread only)

  util::BoundedQueue<Command> queue_;  // lock-lint: unguarded(internally synchronized)
  mutable util::Mutex stats_mutex_;
  PipeStats stats_ DCSN_GUARDED_BY(stats_mutex_);

  // Last member: joins before the rest is destroyed.
  std::jthread server_;  // lock-lint: unguarded(the server thread itself)
};

}  // namespace dcsn::render
