#include "render/compose.hpp"

#include "util/error.hpp"

namespace dcsn::render {

std::int64_t gather_blend(Framebuffer& final_texture,
                          std::span<const Framebuffer> parts) {
  final_texture.clear();
  std::int64_t pixels = 0;
  for (const Framebuffer& part : parts) {
    final_texture.accumulate(part);
    pixels += static_cast<std::int64_t>(part.pixel_count());
  }
  return pixels;
}

std::int64_t compose_tiles(Framebuffer& final_texture,
                           std::span<const Framebuffer> tiles,
                           std::span<const TilePlacement> placements) {
  DCSN_CHECK(tiles.size() == placements.size(),
             "one placement per tile required");
  std::int64_t pixels = 0;
  for (std::size_t k = 0; k < tiles.size(); ++k) {
    final_texture.copy_rect_from(tiles[k], placements[k].x0, placements[k].y0);
    pixels += static_cast<std::int64_t>(tiles[k].pixel_count());
  }
  return pixels;
}

std::int64_t compose_tiles_masked(Framebuffer& final_texture,
                                  std::span<const Framebuffer> tiles,
                                  std::span<const TilePlacement> placements,
                                  std::span<const std::uint8_t> dirty) {
  DCSN_CHECK(tiles.size() == placements.size() && tiles.size() == dirty.size(),
             "one placement and one dirty flag per tile required");
  std::int64_t pixels = 0;
  for (std::size_t k = 0; k < tiles.size(); ++k) {
    if (dirty[k] == 0) continue;  // retained: previous frame's exact pixels
    final_texture.copy_rect_from(tiles[k], placements[k].x0, placements[k].y0);
    pixels += static_cast<std::int64_t>(tiles[k].pixel_count());
  }
  return pixels;
}

}  // namespace dcsn::render
