#include "render/glyphs.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace dcsn::render {

void draw_arrow_plot(Image& image, const WorldToImage& mapping,
                     const field::VectorField& f, const ArrowPlotConfig& config) {
  DCSN_CHECK(config.nx >= 1 && config.ny >= 1, "arrow grid must be non-empty");
  const double max_mag = f.max_magnitude();
  if (max_mag <= 0.0) return;
  const field::Rect domain = f.domain();

  for (int j = 0; j < config.ny; ++j) {
    for (int i = 0; i < config.nx; ++i) {
      const field::Vec2 p = domain.at((i + 0.5) / config.nx, (j + 0.5) / config.ny);
      const field::Vec2 v = f.sample(p);
      const double speed = v.length();
      if (speed < 1e-12 * max_mag) continue;

      auto [x0, y0] = mapping.map(p);
      // Arrow vector in image space (y flips), scaled by relative speed.
      const double scale = config.max_length_px * (speed / max_mag) / speed;
      const double dx = v.x * scale;
      const double dy = -v.y * scale;
      const double x1 = x0 + dx;
      const double y1 = y0 + dy;

      // Shaft plus two head strokes, drawn as world-space polylines mapped
      // back — simpler: draw in image space via tiny world segments.
      auto image_to_world = [&](double px, double py) {
        return mapping.unmap(px, py);
      };
      const std::vector<field::Vec2> shaft = {image_to_world(x0, y0),
                                              image_to_world(x1, y1)};
      draw_polyline(image, mapping, shaft, config.color, config.alpha, 1);

      const double head = config.head_fraction * std::hypot(dx, dy);
      const double angle = std::atan2(dy, dx);
      for (const double side : {+2.6, -2.6}) {
        const double hx = x1 + head * std::cos(angle + side);
        const double hy = y1 + head * std::sin(angle + side);
        const std::vector<field::Vec2> stroke = {image_to_world(x1, y1),
                                                 image_to_world(hx, hy)};
        draw_polyline(image, mapping, stroke, config.color, config.alpha, 1);
      }
    }
  }
}

void draw_streamline_plot(Image& image, const WorldToImage& mapping,
                          const field::VectorField& f,
                          const StreamlinePlotConfig& config) {
  DCSN_CHECK(config.seeds_x >= 1 && config.seeds_y >= 1, "seed grid must be non-empty");
  const field::Rect domain = f.domain();
  // Convert the pixel step to world units via the average map scale.
  const double world_per_px = 0.5 * (domain.width() / image.width() +
                                     domain.height() / image.height());
  particles::TracerConfig tc;
  tc.step_length = config.step_px * world_per_px;
  const particles::StreamlineTracer tracer(tc);

  for (int j = 0; j < config.seeds_y; ++j) {
    for (int i = 0; i < config.seeds_x; ++i) {
      const field::Vec2 seed =
          domain.at((i + 0.5) / config.seeds_x, (j + 0.5) / config.seeds_y);
      const particles::Streamline line =
          tracer.trace(f, seed, config.steps_each_way, config.steps_each_way);
      if (line.size() < 2) continue;
      draw_polyline(image, mapping, line.points, config.color, config.alpha,
                    config.thickness);
    }
  }
}

}  // namespace dcsn::render
