// Classic discrete flow-visualization baselines: arrow plots and
// streamlines.
//
// The paper's motivation (§1, §5.1): arrow plots and streamlines show the
// field "at only discrete positions", and the smog application replaced its
// arrow plots with spot noise. These renderers implement those baselines so
// examples and benches can put the discrete and dense techniques side by
// side.
#pragma once

#include "field/vector_field.hpp"
#include "particles/tracer.hpp"
#include "render/image.hpp"
#include "render/overlay.hpp"

namespace dcsn::render {

struct ArrowPlotConfig {
  int nx = 24;               ///< arrows across the domain
  int ny = 24;
  double max_length_px = 18.0;  ///< arrow length at the field's max speed
  double head_fraction = 0.3;
  Rgb color{0, 0, 0};
  double alpha = 0.9;
};

/// Draws a regular grid of velocity arrows over the image.
void draw_arrow_plot(Image& image, const WorldToImage& mapping,
                     const field::VectorField& f, const ArrowPlotConfig& config);

struct StreamlinePlotConfig {
  int seeds_x = 8;           ///< seed grid
  int seeds_y = 8;
  int steps_each_way = 200;  ///< tracer steps up/downstream per seed
  double step_px = 1.5;      ///< arc length per step in image pixels
  Rgb color{0, 0, 0};
  double alpha = 0.8;
  int thickness = 1;
};

/// Traces and draws streamlines from a regular seed grid.
void draw_streamline_plot(Image& image, const WorldToImage& mapping,
                          const field::VectorField& f,
                          const StreamlinePlotConfig& config);

}  // namespace dcsn::render
