#include "render/bus.hpp"

#include <thread>

namespace dcsn::render {

Bus::Bus(double bytes_per_second)
    // determinism: timing model only — see the Clock declaration.
    : bytes_per_second_(bytes_per_second), channel_free_(Clock::now()) {}

Bus::Clock::time_point Bus::schedule(std::size_t bytes) {
  bytes_moved_.fetch_add(bytes, std::memory_order_relaxed);
  const auto now = Clock::now();  // determinism: timing model only
  if (!throttled()) return now;
  const auto duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(static_cast<double>(bytes) / bytes_per_second_));
  util::MutexLock lock(mutex_);
  const auto start = channel_free_ > now ? channel_free_ : now;
  channel_free_ = start + duration;
  return channel_free_;
}

void Bus::transfer(std::size_t bytes) {
  const auto done = schedule(bytes);
  if (!throttled()) return;
  std::this_thread::sleep_until(done);
}

}  // namespace dcsn::render
