#include "render/pipe.hpp"

#include <string>

#include "util/error.hpp"
#include "util/threading.hpp"

namespace dcsn::render {

GraphicsPipe::GraphicsPipe(PipeConfig config, std::shared_ptr<Bus> bus, int pipe_id)
    : config_(config),
      bus_(std::move(bus)),
      pipe_id_(pipe_id),
      target_(config.width, config.height),
      queue_(config.queue_capacity),
      server_([this](std::stop_token stop) { server_loop(stop); }) {
  DCSN_CHECK(config.raster_cost_multiplier >= 1.0,
             "raster cost multiplier models a slower pipe, must be >= 1");
}

GraphicsPipe::~GraphicsPipe() { queue_.close(); }

void GraphicsPipe::bind_profile(std::shared_ptr<const SpotProfile> profile) {
  queue_.push(CmdBindProfile{std::move(profile)});
}

void GraphicsPipe::set_blend_mode(BlendMode mode) { queue_.push(CmdBlendMode{mode}); }

void GraphicsPipe::set_viewport_origin(int x, int y) {
  queue_.push(CmdViewport{x, y});
}

void GraphicsPipe::resize_target(int width, int height) {
  DCSN_CHECK(width > 0 && height > 0, "pipe target dimensions must be positive");
  // Caller-side bookkeeping: config() must reflect the actual target shape
  // so a pool checkout can tell whether a reshape is needed. Only the
  // dimensions are written; the server thread reads the behavioral fields,
  // which never change after construction.
  config_.width = width;
  config_.height = height;
  queue_.push(CmdResize{width, height});
}

void GraphicsPipe::clear(float value) { queue_.push(CmdClear{value}); }

void GraphicsPipe::submit(CommandBuffer buffer) {
  submit_with_state_changes(std::move(buffer), 0);
}

void GraphicsPipe::submit_with_state_changes(CommandBuffer buffer, int count) {
  if (buffer.empty() && count == 0) return;
  const std::size_t bytes = buffer.byte_size();
  const auto available_at =
      bus_ ? bus_->schedule(bytes)
           // determinism: timing model only — completion stamp, not pixels.
           : Bus::Clock::time_point{Bus::Clock::now()};
  {
    util::MutexLock lock(stats_mutex_);
    stats_.bytes_received += bytes;
  }
  queue_.push(CmdDraw{std::move(buffer), available_at, count});
}

void GraphicsPipe::finish() {
  CmdFence fence;
  std::future<void> done = fence.done.get_future();
  queue_.push(std::move(fence));
  done.wait();
}

Framebuffer GraphicsPipe::read_back() {
  finish();
  if (bus_) bus_->transfer(target_.byte_size());
  return target_;  // copy: the "texture" crossing back to host memory
}

void GraphicsPipe::read_back_into(Framebuffer& out) {
  finish();
  if (bus_) bus_->transfer(target_.byte_size());
  out = target_;  // copy assignment reuses `out`'s allocation when it fits
}

PipeStats GraphicsPipe::stats() const {
  util::MutexLock lock(stats_mutex_);
  return stats_;
}

void GraphicsPipe::reset_stats() {
  util::MutexLock lock(stats_mutex_);
  stats_ = PipeStats{};
}

void GraphicsPipe::server_loop(std::stop_token /*stop*/) {
  util::set_current_thread_name("gpipe-" + std::to_string(pipe_id_));
  while (auto cmd = queue_.pop()) {
    execute(*cmd);
  }
}

void GraphicsPipe::pay_state_change() {
  // Busy-wait: the sync latency occupies the pipe, it is not idle time.
  const util::Stopwatch watch;
  while (watch.seconds() < config_.state_change_seconds) {
    // spin
  }
}

void GraphicsPipe::execute(Command& cmd) {
  struct Visitor {
    GraphicsPipe& pipe;

    void operator()(CmdBindProfile& c) {
      const util::Stopwatch watch;
      pipe.pay_state_change();
      pipe.bound_profile_ = std::move(c.profile);
      util::MutexLock lock(pipe.stats_mutex_);
      pipe.stats_.state_changes += 1;
      pipe.stats_.state_seconds += watch.seconds();
      pipe.stats_.busy_seconds += watch.seconds();
    }

    void operator()(CmdBlendMode& c) {
      const util::Stopwatch watch;
      pipe.pay_state_change();
      pipe.blend_mode_ = c.mode;
      util::MutexLock lock(pipe.stats_mutex_);
      pipe.stats_.state_changes += 1;
      pipe.stats_.state_seconds += watch.seconds();
      pipe.stats_.busy_seconds += watch.seconds();
    }

    void operator()(CmdViewport& c) {
      pipe.viewport_x_ = c.x;
      pipe.viewport_y_ = c.y;
    }

    void operator()(CmdResize& c) {
      const util::Stopwatch watch;
      pipe.pay_state_change();
      pipe.target_ = Framebuffer(c.width, c.height);
      util::MutexLock lock(pipe.stats_mutex_);
      pipe.stats_.state_changes += 1;
      pipe.stats_.state_seconds += watch.seconds();
      pipe.stats_.busy_seconds += watch.seconds();
    }

    void operator()(CmdClear& c) {
      // Raster-side work is attributed with the thread CPU clock so genT
      // stays meaningful when pipes and workers outnumber the host's cores.
      const util::ThreadCpuStopwatch watch;
      pipe.target_.clear(c.value);
      util::MutexLock lock(pipe.stats_mutex_);
      pipe.stats_.busy_seconds += watch.seconds();
      pipe.stats_.raster_seconds += watch.seconds();
    }

    void operator()(CmdDraw& c) {
      // Wait for the bus to deliver the vertex data (DMA completion).
      // determinism: timing model only — stall accounting, not pixels.
      const auto now = Bus::Clock::now();
      if (c.available_at > now) {
        const double stall = std::chrono::duration<double>(c.available_at - now).count();
        std::this_thread::sleep_until(c.available_at);
        util::MutexLock lock(pipe.stats_mutex_);
        pipe.stats_.stall_seconds += stall;
      }
      double state_time = 0.0;
      for (int k = 0; k < c.extra_state_changes; ++k) {
        const util::Stopwatch watch;
        pipe.pay_state_change();
        state_time += watch.seconds();
      }

      const util::ThreadCpuStopwatch watch;
      RasterStats raster;
      if (pipe.bound_profile_) {
        const RasterTarget target{pipe.target_.pixels(), pipe.viewport_x_,
                                  pipe.viewport_y_, pipe.config_.raster_algorithm};
        const int passes = static_cast<int>(pipe.config_.raster_cost_multiplier);
        const double frac = pipe.config_.raster_cost_multiplier - passes;
        for (int pass = 0; pass < passes; ++pass) {
          // Extra passes model a slower pipe; only the first pass may blend
          // additively, so repeat passes draw with weight 0 (cost, no image
          // change).
          RasterStats pass_stats;
          if (pass == 0) {
            rasterize_buffer(target, c.buffer, *pipe.bound_profile_,
                             pipe.blend_mode_, pass_stats);
            raster = pass_stats;
          } else {
            zero_weight_pass(target, c.buffer, *pipe.bound_profile_, pass_stats);
          }
        }
        if (frac > 0.0) {
          // Fractional slowdown: spin for the corresponding share of the
          // first pass's time.
          const double base = watch.seconds() / std::max(1.0, static_cast<double>(passes));
          const double extra = base * frac;
          const util::Stopwatch spin;
          while (spin.seconds() < extra) {
          }
        }
      }
      const double busy = watch.seconds();
      util::MutexLock lock(pipe.stats_mutex_);
      pipe.stats_.buffers += 1;
      pipe.stats_.vertices += static_cast<std::int64_t>(c.buffer.vertex_count());
      pipe.stats_.raster += raster;
      pipe.stats_.raster_seconds += busy;
      pipe.stats_.state_seconds += state_time;
      pipe.stats_.state_changes += c.extra_state_changes;
      pipe.stats_.busy_seconds += busy + state_time;
    }

    void operator()(CmdFence& c) { c.done.set_value(); }

    static void zero_weight_pass(const RasterTarget& target, const CommandBuffer& buf,
                                 const SpotProfile& profile, RasterStats& stats) {
      for (const MeshHeader& h : buf.meshes()) {
        rasterize_mesh(target, buf.vertices_of(h), h.cols, h.rows, 0.0f, profile,
                       BlendMode::kAdditive, stats);
      }
    }
  };
  std::visit(Visitor{*this}, cmd);
}

}  // namespace dcsn::render
