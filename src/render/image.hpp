// 8-bit RGB images: the final rendered frames (pipeline step 4).
//
// Spot-noise textures are zero-mean float fields; mapping them onto an
// 8-bit image centers them at mid-gray. Scalar data (pollutant, vorticity)
// is composited over the texture through a colormap with alpha, which is
// the "superimposed on the wind field" rendering of figure 6.
#pragma once

#include <vector>

#include "render/colormap.hpp"
#include "render/framebuffer.hpp"
#include "util/span2d.hpp"

namespace dcsn::render {

class Image {
 public:
  Image() = default;
  Image(int width, int height, Rgb fill = {0, 0, 0});

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }

  [[nodiscard]] Rgb& at(int x, int y) {
    return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(x)];
  }
  [[nodiscard]] const Rgb& at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(x)];
  }

  /// Alpha-blends `color` over pixel (x, y); out-of-bounds writes ignored.
  void blend(int x, int y, Rgb color, double alpha);

  [[nodiscard]] const std::vector<Rgb>& pixels() const { return pixels_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> pixels_;
};

/// How to tone-map a float texture to 8 bits.
struct ToneMap {
  /// gray = 0.5 + gain * value, clamped. With gain chosen from the texture's
  /// standard deviation when auto_gain is set.
  double gain = 1.0;
  bool auto_gain = true;
  /// Target: ±2 sigma fills the 8-bit range when auto_gain.
  double sigma_range = 2.0;
};

/// Renders a spot-noise texture to grayscale.
[[nodiscard]] Image texture_to_image(const Framebuffer& texture, const ToneMap& tone = {});

/// Measured standard deviation of a texture (used by auto gain and tests).
[[nodiscard]] double texture_stddev(const Framebuffer& texture);

/// Auto-gain statistics over *sanitized* pixels (non-finite counted as the
/// zero-mean texture's neutral 0.0) — one NaN cannot poison a whole
/// frame's contrast. Shared by every float→byte tone-map path.
struct ToneStats {
  double mean = 0.0;
  double sigma = 0.0;
};
[[nodiscard]] ToneStats sanitized_tone_stats(const Framebuffer& texture);

/// One pixel of the tone map: gray = 0.5 + gain * (value - mean), clamped
/// to [0, 255]. Non-finite values flush to neutral mid-gray *before* the
/// clamp, so the float→byte cast is deterministic for every input (clamp
/// on NaN is unspecified, lround on NaN is undefined).
[[nodiscard]] std::uint8_t tone_map_byte(float value, double gain, double mean);

}  // namespace dcsn::render
