// Combining partial textures into the final spot-noise texture.
//
// Divide and conquer produces one partial texture per graphics pipe. Two
// composition strategies from the paper:
//   * gather_blend — every pipe rendered the full texture area; the partials
//     are summed sequentially (the overhead term c of eq. 3.2);
//   * compose_tiles — every pipe rendered a disjoint region; the partials
//     are copied into place, cheaper than blending but bought with duplicated
//     work for spots that straddle region boundaries (paper §3, §4).
//
// Temporal coherence adds a third: compose_tiles_masked merges *freshly
// rendered* tiles over a final texture that *retains* the previous frame's
// pixels everywhere else. Retention is sound because a clean tile's spot
// set is unchanged and rendering is bit-deterministic (see
// render/rasterizer.hpp), so the retained region already holds exactly what
// a re-render would produce.
#pragma once

#include <cstdint>
#include <span>

#include "render/framebuffer.hpp"

namespace dcsn::render {

/// Pixel rectangle a tile occupies inside the final texture.
struct TilePlacement {
  int x0 = 0;
  int y0 = 0;
};

/// Sequentially accumulates `parts` into `final_texture` (which is cleared
/// first). Sizes must match. Returns the number of pixels blended, letting
/// callers account the cost of the sequential step.
std::int64_t gather_blend(Framebuffer& final_texture, std::span<const Framebuffer> parts);

/// Copies each tile to its placement. Tiles must fit and, by construction of
/// the tiling, be disjoint.
std::int64_t compose_tiles(Framebuffer& final_texture, std::span<const Framebuffer> tiles,
                           std::span<const TilePlacement> placements);

/// The temporal-coherence compose: copies only the tiles whose `dirty` flag
/// is set, leaving every other region of `final_texture` untouched (the
/// cached pixels of the previous frame). Entries of `tiles` whose flag is
/// clear are never read and may be empty — the engine skips their readback
/// entirely. Returns the number of pixels copied.
std::int64_t compose_tiles_masked(Framebuffer& final_texture,
                                  std::span<const Framebuffer> tiles,
                                  std::span<const TilePlacement> placements,
                                  std::span<const std::uint8_t> dirty);

}  // namespace dcsn::render
