// Colormaps for scalar overlays.
//
// Figure 6 uses "a rainbow colormap" for the pollutant; the browser maps
// vorticity and speed. Rainbow reproduces the paper's figures; viridis and
// diverging maps are provided because rainbow is a poor default by modern
// standards.
#pragma once

#include <cstdint>

namespace dcsn::render {

struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  bool operator==(const Rgb&) const = default;
};

enum class ColormapKind {
  kGrayscale,
  kRainbow,    ///< blue -> cyan -> green -> yellow -> red (paper fig. 6)
  kViridis,    ///< perceptually uniform
  kDiverging,  ///< blue -> white -> red, for signed quantities (vorticity)
};

/// Maps t in [0,1] (clamped) through the selected colormap.
[[nodiscard]] Rgb colormap(ColormapKind kind, double t);

}  // namespace dcsn::render
