#include "render/colormap.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace dcsn::render {

namespace {

std::uint8_t to_byte(double v) {
  return static_cast<std::uint8_t>(std::lround(std::clamp(v, 0.0, 1.0) * 255.0));
}

Rgb rainbow(double t) {
  // Hue sweep 240 deg (blue) -> 0 deg (red) at full saturation/value.
  const double hue = (1.0 - t) * 240.0 / 60.0;  // in sextants
  const int sextant = static_cast<int>(hue) % 6;
  const double f = hue - std::floor(hue);
  switch (sextant) {
    case 0: return {255, to_byte(f), 0};          // red -> yellow
    case 1: return {to_byte(1.0 - f), 255, 0};    // yellow -> green
    case 2: return {0, 255, to_byte(f)};          // green -> cyan
    case 3: return {0, to_byte(1.0 - f), 255};    // cyan -> blue
    default: return {0, 0, 255};
  }
}

// Five-point piecewise-linear fit of viridis; adequate for visualization.
Rgb viridis(double t) {
  static constexpr std::array<std::array<double, 3>, 5> anchors = {{
      {0.267, 0.005, 0.329},
      {0.229, 0.322, 0.546},
      {0.128, 0.567, 0.551},
      {0.369, 0.789, 0.383},
      {0.993, 0.906, 0.144},
  }};
  const double x = t * (anchors.size() - 1);
  const auto lo = static_cast<std::size_t>(
      std::clamp(static_cast<int>(x), 0, static_cast<int>(anchors.size()) - 2));
  const double f = x - static_cast<double>(lo);
  Rgb out;
  out.r = to_byte(anchors[lo][0] + (anchors[lo + 1][0] - anchors[lo][0]) * f);
  out.g = to_byte(anchors[lo][1] + (anchors[lo + 1][1] - anchors[lo][1]) * f);
  out.b = to_byte(anchors[lo][2] + (anchors[lo + 1][2] - anchors[lo][2]) * f);
  return out;
}

Rgb diverging(double t) {
  // Blue (0) -> white (0.5) -> red (1).
  if (t < 0.5) {
    const double f = t * 2.0;
    return {to_byte(0.2 + 0.8 * f), to_byte(0.3 + 0.7 * f), 255};
  }
  const double f = (t - 0.5) * 2.0;
  return {255, to_byte(1.0 - 0.7 * f), to_byte(1.0 - 0.8 * f)};
}

}  // namespace

Rgb colormap(ColormapKind kind, double t) {
  t = std::clamp(t, 0.0, 1.0);
  switch (kind) {
    case ColormapKind::kGrayscale: {
      const std::uint8_t g = to_byte(t);
      return {g, g, g};
    }
    case ColormapKind::kRainbow:
      return rainbow(t);
    case ColormapKind::kViridis:
      return viridis(t);
    case ColormapKind::kDiverging:
      return diverging(t);
  }
  return {};
}

}  // namespace dcsn::render
