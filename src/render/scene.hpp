// Pipeline step 4: "an image is rendered by mapping the texture onto a
// geometric surface."
//
// In the 2D applications the surface is a view rectangle: the synthesized
// texture (which covers the field's full domain) is sampled bilinearly into
// the output image for an arbitrary world-space window — this is what lets
// the data browser zoom and pan a 512x512 texture without re-synthesizing,
// and what decouples texture resolution from display resolution.
#pragma once

#include "field/vec2.hpp"
#include "render/framebuffer.hpp"
#include "render/image.hpp"

namespace dcsn::render {

/// Bilinear sample of a float texture at continuous pixel coordinates
/// (texel centers at half-integers), border-clamped.
[[nodiscard]] float sample_texture(const Framebuffer& texture, double x, double y);

struct SceneView {
  field::Rect texture_world;  ///< world rect the texture covers
  field::Rect window;         ///< world rect to display
  int out_width = 512;
  int out_height = 512;
  ToneMap tone;
};

/// Renders the window of the texture into a grayscale image.
[[nodiscard]] Image render_scene(const Framebuffer& texture, const SceneView& view);

}  // namespace dcsn::render
